package rtl_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cycle"
	"repro/internal/ktest"
	"repro/internal/mem"
	"repro/internal/rtl"
	"repro/internal/sim"
)

func runRTL(t *testing.T, isaName, src string, cfg rtl.Config, extra ...sim.Observer) *rtl.Pipeline {
	t.Helper()
	p := ktest.BuildProgram(t, isaName, src)
	opts := sim.DefaultOptions()
	opts.MaxInstructions = 10_000_000
	c := ktest.NewCPU(t, p, opts)
	pipe := rtl.New(ktest.Model(t), cfg)
	c.Attach(pipe)
	for _, o := range extra {
		c.Attach(o)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	pipe.Drain()
	return pipe
}

func wrap(body string) string {
	return ".global main\nmain:\n" + body + "\n\tli a0, 0\n\tret\n"
}

func flatCfg() rtl.Config {
	return rtl.Config{QueueDepth: 8, MaxDriftInstrs: 8, SharedMulPair: true, Hierarchy: mem.Flat(3)}
}

func TestRISCThroughputOneOpPerCycle(t *testing.T) {
	// n independent adds issue one per cycle in RISC mode.
	n := 64
	var b strings.Builder
	b.WriteString("\taddi s0, zero, 1\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\tadd t%d, s0, s0\n", i%8)
	}
	pipe := runRTL(t, "RISC", wrap(b.String()), flatCfg())
	instrs := pipe.Instructions()
	if c := pipe.Cycles(); c < instrs || c > instrs+16 {
		t.Fatalf("cycles = %d for %d instructions, want ~1 IPC", c, instrs)
	}
}

func TestSharedMultiplierStalls(t *testing.T) {
	// VLIW2: both slots of a pair multiply each instruction. With the
	// shared multiplier only one can accept per cycle, so the run with
	// sharing enabled must be slower than without.
	var b strings.Builder
	b.WriteString("\taddi s0, zero, 3\n\taddi s1, zero, 5\n")
	for i := 0; i < 32; i++ {
		b.WriteString("\t{ mul t0, s0, s1 ; mul t1, s1, s0 }\n")
	}
	src := ".isa VLIW2\n" + wrap(b.String())
	shared := runRTL(t, "VLIW2", src, flatCfg())
	nocfg := flatCfg()
	nocfg.SharedMulPair = false
	unshared := runRTL(t, "VLIW2", src, nocfg)
	if shared.Cycles() <= unshared.Cycles() {
		t.Fatalf("shared multiplier not modelled: shared=%d unshared=%d",
			shared.Cycles(), unshared.Cycles())
	}
}

func TestDriftBoundLimitsRunahead(t *testing.T) {
	// Slot 0 executes a slow dependent mul chain; slot 1 independent
	// adds. With a tight drift bound slot 1 must wait for slot 0, so a
	// 1-instruction window is slower than a 64-instruction window.
	var b strings.Builder
	b.WriteString("\taddi t0, zero, 3\n")
	for i := 0; i < 32; i++ {
		b.WriteString("\t{ mul t0, t0, t0 ; addi t1, zero, 1 }\n")
	}
	src := ".isa VLIW2\n" + wrap(b.String())
	tight := flatCfg()
	tight.MaxDriftInstrs = 1
	loose := flatCfg()
	loose.MaxDriftInstrs = 64
	loose.QueueDepth = 64
	tp := runRTL(t, "VLIW2", src, tight)
	lp := runRTL(t, "VLIW2", src, loose)
	if tp.Cycles() < lp.Cycles() {
		t.Fatalf("tight drift (%d cycles) faster than loose (%d)", tp.Cycles(), lp.Cycles())
	}
}

func TestDOETracksRTLOnStraightLineCode(t *testing.T) {
	// The heuristic DOE model approximates this pipeline within a few
	// percent on code without heavy resource conflicts (Table II's
	// claim). Use a mixed arithmetic workload in VLIW4.
	rng := rand.New(rand.NewSource(21))
	var b strings.Builder
	b.WriteString("\taddi s0, zero, 7\n\taddi s1, zero, 9\n\taddi s2, zero, 11\n\taddi s3, zero, 13\n")
	for i := 0; i < 200; i++ {
		ops := make([]string, 4)
		for s := 0; s < 4; s++ {
			dst := fmt.Sprintf("t%d", s*2+rng.Intn(2)) // distinct per slot
			a := fmt.Sprintf("s%d", rng.Intn(4))
			c := fmt.Sprintf("s%d", rng.Intn(4))
			op := []string{"add", "sub", "xor", "or"}[rng.Intn(4)]
			ops[s] = fmt.Sprintf("%s %s, %s, %s", op, dst, a, c)
		}
		fmt.Fprintf(&b, "\t{ %s }\n", strings.Join(ops, " ; "))
	}
	src := ".isa VLIW4\n" + wrap(b.String())

	doe := cycle.NewDOE(ktest.Model(t), mem.Flat(3))
	pipe := runRTL(t, "VLIW4", src, flatCfg(), doe)
	r, d := float64(pipe.Cycles()), float64(doe.Cycles())
	err := (d - r) / r
	if err < -0.15 || err > 0.15 {
		t.Fatalf("DOE approximation error %.1f%% (RTL=%d DOE=%d), want |err| <= 15%%",
			err*100, pipe.Cycles(), doe.Cycles())
	}
}

func TestMemoryAccessesReachHierarchy(t *testing.T) {
	src := wrap(`
	addi sp, sp, -64
	sw zero, 0(sp)
	lw t0, 0(sp)
	lw t1, 32(sp)
	addi sp, sp, 64
`)
	h := mem.Paper()
	cfg := rtl.Config{QueueDepth: 8, MaxDriftInstrs: 8, SharedMulPair: true, Hierarchy: h}
	runRTL(t, "RISC", src, cfg)
	if total := h.L1.Hits + h.L1.Misses; total < 3 {
		t.Fatalf("L1 saw %d accesses, want >= 3", total)
	}
}

func TestISASwitchReconfiguresPipeline(t *testing.T) {
	src := `
	.global main
main:
	addi t0, zero, 1
	swt VLIW2
	.isa VLIW2
	{ add t0, t0, t0 ; addi t1, zero, 2 }
	swt RISC
	.isa RISC
	add a0, t0, t1
	ret
`
	pipe := runRTL(t, "RISC", src, flatCfg())
	if pipe.Cycles() == 0 || pipe.Ops() == 0 {
		t.Fatalf("pipeline recorded nothing across ISA switch: %+v cycles", pipe.Cycles())
	}
}

func TestResetAndDescribe(t *testing.T) {
	pipe := runRTL(t, "RISC", wrap("\taddi t0, zero, 1\n"), flatCfg())
	if pipe.Cycles() == 0 {
		t.Fatal("no cycles")
	}
	pipe.Reset()
	if pipe.Cycles() != 0 || pipe.Ops() != 0 {
		t.Fatal("reset did not clear")
	}
	if !strings.Contains(pipe.Describe(), "rtl(") {
		t.Fatalf("describe = %q", pipe.Describe())
	}
}
