// Package link implements the linker of the KAHRISMA toolchain
// (Sec. IV of the paper): it merges relocatable ELF objects into an
// executable, resolves relocations, injects the startup code and the
// auto-generated C-library stub functions (Sec. V-E), merges the debug
// sections, and records the entry point and entry ISA.
package link

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/kelf"
	"repro/internal/simcall"
)

// Options configure a link.
type Options struct {
	// TextBase is the virtual address of .text (default 0x1000).
	TextBase uint32
	// StackTop is the initial stack pointer (default 0x00400000).
	StackTop uint32
	// Entry is the entry symbol (default "_start"; if no object defines
	// it and Startup is true, a startup object is generated).
	Entry string
	// EntryISA names the ISA the startup code and C-library stubs are
	// encoded in (default: the model's default ISA). It must match the
	// ISA of the entry code (Sec. V-D).
	EntryISA string
	// Startup controls generation of the crt0 object (set sp, call
	// main, exit with main's return value).
	Startup bool
	// LibC controls generation of stub functions for unresolved
	// references to known C library names.
	LibC bool
}

// Defaults returns the standard options used by the driver and tools.
func Defaults() Options {
	return Options{TextBase: 0x1000, StackTop: 0x00400000, Entry: "_start", Startup: true, LibC: true}
}

// Link combines objects into an executable.
func Link(m *isa.Model, objects []*kelf.File, opt Options) (*kelf.File, error) {
	if opt.TextBase == 0 {
		opt.TextBase = 0x1000
	}
	if opt.StackTop == 0 {
		opt.StackTop = 0x00400000
	}
	if opt.Entry == "" {
		opt.Entry = "_start"
	}
	entryISA := m.DefaultISA()
	if opt.EntryISA != "" {
		entryISA = m.ISAByName(opt.EntryISA)
		if entryISA == nil {
			return nil, fmt.Errorf("link: unknown entry ISA %q", opt.EntryISA)
		}
	}
	objects = append([]*kelf.File(nil), objects...)
	for i, o := range objects {
		if o.Type != kelf.TypeRel {
			return nil, fmt.Errorf("link: input %d is not a relocatable object", i)
		}
	}

	defined := definedGlobals(objects)

	// Generate startup code if the entry symbol is missing.
	if opt.Startup {
		if _, ok := defined[opt.Entry]; !ok {
			crt0, err := crt0Object(m, entryISA, opt)
			if err != nil {
				return nil, err
			}
			// Startup first so the entry sits at TextBase.
			objects = append([]*kelf.File{crt0}, objects...)
			defined = definedGlobals(objects)
		}
	}

	// Generate C-library stubs for unresolved known names.
	if opt.LibC {
		missing := undefinedNames(objects, defined)
		var libNames []string
		for _, n := range missing {
			if _, ok := simcall.Names[n]; ok {
				libNames = append(libNames, n)
			}
		}
		if len(libNames) > 0 {
			stubObj, err := libcObject(m, entryISA, libNames)
			if err != nil {
				return nil, err
			}
			objects = append(objects, stubObj)
			defined = definedGlobals(objects)
		}
	}

	// ---------------- layout ----------------
	secOrder := []string{kelf.SecText, kelf.SecRodata, kelf.SecData, kelf.SecBss}
	// placement[obj][section] = final virtual address of that object's
	// contribution to the section.
	placement := make([]map[string]uint32, len(objects))
	for i := range placement {
		placement[i] = map[string]uint32{}
	}
	merged := map[string]*kelf.Section{}
	addr := opt.TextBase
	for _, name := range secOrder {
		addr = alignUp(addr, 64)
		out := &kelf.Section{Name: name, Addr: addr}
		switch name {
		case kelf.SecText:
			out.Type, out.Flags = kelf.SecProgbits, kelf.FlagAlloc|kelf.FlagExec
		case kelf.SecRodata:
			out.Type, out.Flags = kelf.SecProgbits, kelf.FlagAlloc
		case kelf.SecData:
			out.Type, out.Flags = kelf.SecProgbits, kelf.FlagAlloc|kelf.FlagWrite
		case kelf.SecBss:
			out.Type, out.Flags = kelf.SecNobits, kelf.FlagAlloc|kelf.FlagWrite
		}
		for oi, obj := range objects {
			s := obj.Section(name)
			if s == nil {
				continue
			}
			cur := addr + out.ByteSize()
			cur = alignUp(cur, 8)
			pad := cur - (addr + out.ByteSize())
			if name == kelf.SecBss {
				out.Size += pad + s.Size
			} else {
				padBytes := make([]byte, pad)
				if name == kelf.SecText {
					// Keep every text word decodable: pad with NOPs.
					if nop := m.Op("NOP"); nop != nil && pad%4 == 0 {
						w, _ := nop.Encode(isa.Operands{})
						for i := uint32(0); i < pad; i += 4 {
							padBytes[i] = byte(w)
							padBytes[i+1] = byte(w >> 8)
							padBytes[i+2] = byte(w >> 16)
							padBytes[i+3] = byte(w >> 24)
						}
					}
				}
				out.Data = append(out.Data, padBytes...)
				out.Data = append(out.Data, s.Data...)
			}
			placement[oi][name] = cur
		}
		if out.ByteSize() > 0 || name == kelf.SecText {
			merged[name] = out
			addr += out.ByteSize()
		}
	}
	heapStart := alignUp(addr, 4096)

	// ---------------- symbol resolution ----------------
	// Global address table plus per-object local scopes.
	globalAddr := map[string]uint32{}
	globalSym := map[string]*kelf.Symbol{}
	localAddr := make([]map[string]uint32, len(objects))
	for oi, obj := range objects {
		localAddr[oi] = map[string]uint32{}
		for _, sym := range obj.Symbols {
			if sym.Section == "" {
				continue
			}
			var v uint32
			if sym.Section == kelf.SectionAbs {
				v = sym.Value
			} else {
				base, ok := placement[oi][sym.Section]
				if !ok {
					return nil, fmt.Errorf("link: symbol %q in unplaced section %q", sym.Name, sym.Section)
				}
				v = base + sym.Value
			}
			if sym.Bind == kelf.BindLocal {
				localAddr[oi][sym.Name] = v
			} else {
				if _, dup := globalAddr[sym.Name]; dup {
					return nil, fmt.Errorf("link: multiple definitions of %q", sym.Name)
				}
				globalAddr[sym.Name] = v
				globalSym[sym.Name] = sym
			}
		}
	}
	// Linker-provided absolute symbols.
	for name, v := range map[string]uint32{
		"__stack_top":  opt.StackTop,
		"__heap_start": heapStart,
	} {
		if _, dup := globalAddr[name]; !dup {
			globalAddr[name] = v
		}
	}

	resolve := func(oi int, name string) (uint32, error) {
		if v, ok := localAddr[oi][name]; ok {
			return v, nil
		}
		if v, ok := globalAddr[name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("link: undefined symbol %q", name)
	}

	// ---------------- relocation ----------------
	for oi, obj := range objects {
		for _, s := range obj.Sections {
			if len(s.Relocs) == 0 {
				continue
			}
			out, ok := merged[s.Name]
			if !ok || out.Type == kelf.SecNobits {
				return nil, fmt.Errorf("link: relocations against unsupported section %q", s.Name)
			}
			base := placement[oi][s.Name]
			for _, r := range s.Relocs {
				sv, err := resolve(oi, r.Symbol)
				if err != nil {
					return nil, err
				}
				p := base + r.Offset
				off := p - out.Addr
				if int(off)+4 > len(out.Data) {
					return nil, fmt.Errorf("link: relocation offset %#x out of section %s", r.Offset, s.Name)
				}
				if err := patch(out.Data[off:off+4], r.Type, sv, r.Addend, p); err != nil {
					return nil, fmt.Errorf("link: %s+%#x (%s against %q): %v",
						s.Name, r.Offset, r.Type, r.Symbol, err)
				}
			}
		}
	}

	// ---------------- debug info ----------------
	lineMap := &kelf.LineMap{}
	srcMap := &kelf.LineMap{}
	funcs := &kelf.FuncTable{}
	for oi, obj := range objects {
		textBase, hasText := placement[oi][kelf.SecText]
		if !hasText {
			continue
		}
		if err := mergeLineMap(lineMap, obj.Section(kelf.SecLineMap), textBase); err != nil {
			return nil, err
		}
		if err := mergeLineMap(srcMap, obj.Section(kelf.SecSrcMap), textBase); err != nil {
			return nil, err
		}
		if sec := obj.Section(kelf.SecFuncs); sec != nil {
			ft, err := kelf.DecodeFuncTable(sec.Data)
			if err != nil {
				return nil, err
			}
			ft.Rebase(textBase)
			funcs.Funcs = append(funcs.Funcs, ft.Funcs...)
		}
	}
	lineMap.Sort()
	srcMap.Sort()
	funcs.Sort()

	// ---------------- output ----------------
	exe := kelf.New(kelf.TypeExec)
	for _, name := range secOrder {
		if s, ok := merged[name]; ok {
			if err := exe.AddSection(s); err != nil {
				return nil, err
			}
		}
	}
	if len(lineMap.Entries) > 0 {
		_ = exe.AddSection(&kelf.Section{Name: kelf.SecLineMap, Type: kelf.SecProgbits, Data: lineMap.Encode()})
	}
	if len(srcMap.Entries) > 0 {
		_ = exe.AddSection(&kelf.Section{Name: kelf.SecSrcMap, Type: kelf.SecProgbits, Data: srcMap.Encode()})
	}
	if len(funcs.Funcs) > 0 {
		_ = exe.AddSection(&kelf.Section{Name: kelf.SecFuncs, Type: kelf.SecProgbits, Data: funcs.Encode()})
	}
	// Globals (with final addresses) survive into the executable.
	names := make([]string, 0, len(globalAddr))
	for n := range globalAddr {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sym := &kelf.Symbol{Name: n, Value: globalAddr[n], Bind: kelf.BindGlobal, Section: kelf.SectionAbs}
		if src := globalSym[n]; src != nil {
			sym.Type = src.Type
			sym.Size = src.Size
			if src.Section != kelf.SectionAbs {
				sym.Section = src.Section
			}
		}
		if err := exe.AddSymbol(sym); err != nil {
			return nil, err
		}
	}

	entry, ok := globalAddr[opt.Entry]
	if !ok {
		return nil, fmt.Errorf("link: entry symbol %q undefined", opt.Entry)
	}
	exe.Entry = entry
	exe.EntryISA = entryISA.ID
	if fi := funcs.Lookup(entry); fi != nil && int(fi.ISA) != entryISA.ID {
		return nil, fmt.Errorf("link: entry %q is %s code but entry ISA is %s (Sec. V-D: initial ISA must match the entry code)",
			opt.Entry, m.ISAByID(int(fi.ISA)).Name, entryISA.Name)
	}
	return exe, nil
}

func definedGlobals(objects []*kelf.File) map[string]bool {
	out := map[string]bool{}
	for _, o := range objects {
		for _, s := range o.Symbols {
			if s.Bind == kelf.BindGlobal && s.Section != "" {
				out[s.Name] = true
			}
		}
	}
	return out
}

func undefinedNames(objects []*kelf.File, defined map[string]bool) []string {
	seen := map[string]bool{}
	var out []string
	for _, o := range objects {
		for _, s := range o.Symbols {
			if s.Section == "" && !defined[s.Name] && !seen[s.Name] {
				seen[s.Name] = true
				out = append(out, s.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// patch applies one relocation to the 4 bytes at b.
func patch(b []byte, t kelf.RelocType, s uint32, a int32, p uint32) error {
	target := s + uint32(a)
	w := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	switch t {
	case kelf.RelAbs32:
		w = target
	case kelf.RelHi16:
		w = w&0xFFFF0000 | target>>16
	case kelf.RelLo16:
		w = w&0xFFFF0000 | target&0xFFFF
	case kelf.RelJ26:
		if target%4 != 0 {
			return fmt.Errorf("jump target %#x not word aligned", target)
		}
		v := target / 4
		if v >= 1<<26 {
			return fmt.Errorf("jump target %#x out of 26-bit range", target)
		}
		w = w&0xFC000000 | v
	case kelf.RelBr16:
		delta := int64(target) - int64(p)
		if delta%4 != 0 {
			return fmt.Errorf("branch target %#x misaligned relative to %#x", target, p)
		}
		v := delta / 4
		if v < -(1<<15) || v >= 1<<15 {
			return fmt.Errorf("branch displacement %d out of 16-bit range", v)
		}
		w = w&0xFFFF0000 | uint32(v)&0xFFFF
	default:
		return fmt.Errorf("unknown relocation type %d", t)
	}
	b[0], b[1], b[2], b[3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
	return nil
}

func mergeLineMap(dst *kelf.LineMap, sec *kelf.Section, delta uint32) error {
	if sec == nil {
		return nil
	}
	lm, err := kelf.DecodeLineMap(sec.Data)
	if err != nil {
		return err
	}
	for _, e := range lm.Entries {
		fi := dst.AddFile(lm.Files[e.File])
		dst.Add(e.Addr+delta, fi, e.Line)
	}
	return nil
}

func alignUp(n, a uint32) uint32 { return (n + a - 1) &^ (a - 1) }

// crt0Object assembles the startup code: initialize sp, call main,
// exit(main's return value).
func crt0Object(m *isa.Model, entryISA *isa.ISA, opt Options) (*kelf.File, error) {
	src := fmt.Sprintf(`
	.isa %s
	.text
	.global _start
	.func _start
_start:
	lui sp, %%hi(__stack_top)
	ori sp, sp, %%lo(__stack_top)
	jal main
	simcall %d
	halt
	.endfunc
`, entryISA.Name, simcall.Exit)
	obj, err := asm.Assemble(m, "<crt0>", src)
	if err != nil {
		return nil, fmt.Errorf("link: assembling startup code: %v", err)
	}
	return obj, nil
}

// libcObject assembles the auto-generated stub file: one tiny function
// per required library function, whose body only executes the SIMCALL
// operation and returns (Sec. V-E).
func libcObject(m *isa.Model, entryISA *isa.ISA, names []string) (*kelf.File, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "\t.isa %s\n\t.text\n", entryISA.Name)
	for _, n := range names {
		id := simcall.Names[n]
		fmt.Fprintf(&sb, "\t.global %s\n\t.func %s\n%s:\n\tsimcall %d\n\tret\n\t.endfunc\n", n, n, n, id)
	}
	obj, err := asm.Assemble(m, "<libc-stubs>", sb.String())
	if err != nil {
		return nil, fmt.Errorf("link: assembling C library stubs: %v", err)
	}
	return obj, nil
}
