package link_test

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/kelf"
	"repro/internal/link"
	"repro/internal/targetgen"
)

func obj(t *testing.T, name, src string) *kelf.File {
	t.Helper()
	f, err := asm.Assemble(targetgen.MustKahrisma(), name, src)
	if err != nil {
		t.Fatalf("assemble %s: %v", name, err)
	}
	return f
}

func linkObjs(t *testing.T, opt link.Options, objs ...*kelf.File) *kelf.File {
	t.Helper()
	exe, err := link.Link(targetgen.MustKahrisma(), objs, opt)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return exe
}

func word(t *testing.T, exe *kelf.File, sec string, addr uint32) uint32 {
	t.Helper()
	s := exe.Section(sec)
	if s == nil {
		t.Fatalf("no section %s", sec)
	}
	off := addr - s.Addr
	if int(off)+4 > len(s.Data) {
		t.Fatalf("addr %#x outside %s [%#x,%#x)", addr, sec, s.Addr, s.Addr+uint32(len(s.Data)))
	}
	return binary.LittleEndian.Uint32(s.Data[off:])
}

const mainSrc = `
	.global main
	.func main
main:
	la a0, greeting
	jal helper
	li a0, 0
	ret
	.endfunc
	.data
	.global greeting
greeting:
	.asciz "hello"
`

const helperSrc = `
	.global helper
	.func helper
helper:
loop:
	addi a0, a0, -1
	bne a0, zero, loop
	ret
	.endfunc
	.rodata
	.global table
table:
	.word greeting, main
`

func TestLinkTwoObjects(t *testing.T) {
	exe := linkObjs(t, link.Defaults(), obj(t, "main.s", mainSrc), obj(t, "helper.s", helperSrc))
	if exe.Type != kelf.TypeExec {
		t.Fatal("not an executable")
	}
	// Entry is crt0 at TextBase.
	if exe.Entry != 0x1000 {
		t.Fatalf("entry = %#x, want 0x1000", exe.Entry)
	}
	start := exe.Symbol("_start")
	if start == nil || start.Value != 0x1000 {
		t.Fatalf("_start = %+v", start)
	}
	mainSym := exe.Symbol("main")
	helperSym := exe.Symbol("helper")
	greet := exe.Symbol("greeting")
	tableSym := exe.Symbol("table")
	if mainSym == nil || helperSym == nil || greet == nil || tableSym == nil {
		t.Fatal("missing symbols")
	}

	// crt0's `jal main` (3rd instruction of _start) targets main.
	jalWord := word(t, exe, kelf.SecText, 0x1000+8)
	m := targetgen.MustKahrisma()
	jal := m.Op("JAL")
	if !jal.Match(jalWord) {
		t.Fatalf("word at _start+8 is not JAL: %#x", jalWord)
	}
	if got := uint32(jal.DecodeOperands(jalWord).Imm) * 4; got != mainSym.Value {
		t.Errorf("jal target %#x, want main %#x", got, mainSym.Value)
	}

	// main's la: lui/ori pair resolving greeting.
	luiWord := word(t, exe, kelf.SecText, mainSym.Value)
	oriWord := word(t, exe, kelf.SecText, mainSym.Value+4)
	hi := m.Op("LUI").DecodeOperands(luiWord).Imm
	lo := m.Op("ORI").DecodeOperands(oriWord).Imm
	if addr := uint32(hi)<<16 | uint32(lo); addr != greet.Value {
		t.Errorf("la resolves to %#x, want greeting %#x", addr, greet.Value)
	}

	// helper's backward branch: displacement -1 instruction.
	bneWord := word(t, exe, kelf.SecText, helperSym.Value+4)
	if got := m.Op("BNE").DecodeOperands(bneWord).Imm; got != -1 {
		t.Errorf("bne displacement = %d, want -1", got)
	}

	// .rodata table words point at greeting and main.
	if got := word(t, exe, kelf.SecRodata, tableSym.Value); got != greet.Value {
		t.Errorf("table[0] = %#x, want %#x", got, greet.Value)
	}
	if got := word(t, exe, kelf.SecRodata, tableSym.Value+4); got != mainSym.Value {
		t.Errorf("table[1] = %#x, want %#x", got, mainSym.Value)
	}

	// Linker-provided symbols.
	if st := exe.Symbol("__stack_top"); st == nil || st.Value != 0x00400000 {
		t.Errorf("__stack_top = %+v", st)
	}
	hs := exe.Symbol("__heap_start")
	data := exe.Section(kelf.SecData)
	if hs == nil || hs.Value < data.Addr+uint32(len(data.Data)) || hs.Value%4096 != 0 {
		t.Errorf("__heap_start = %+v", hs)
	}
}

func TestLibcStubGeneration(t *testing.T) {
	src := `
	.global main
main:
	jal puts
	jal malloc
	ret
`
	exe := linkObjs(t, link.Defaults(), obj(t, "m.s", src))
	for _, n := range []string{"puts", "malloc"} {
		if exe.Symbol(n) == nil {
			t.Errorf("stub %s not generated", n)
		}
	}
	// Stubs are simcall+ret; check puts starts with SIMCALL id 2.
	m := targetgen.MustKahrisma()
	w := word(t, exe, kelf.SecText, exe.Symbol("puts").Value)
	sc := m.Op("SIMCALL")
	if !sc.Match(w) || sc.DecodeOperands(w).Imm != 2 {
		t.Errorf("puts stub word = %#x", w)
	}
	// Function table contains the stubs.
	ft, err := kelf.DecodeFuncTable(exe.Section(kelf.SecFuncs).Data)
	if err != nil {
		t.Fatal(err)
	}
	if fi := ft.Lookup(exe.Symbol("puts").Value); fi == nil || fi.Name != "puts" {
		t.Errorf("functable lookup(puts) = %+v", fi)
	}
}

func TestLinkErrors(t *testing.T) {
	m := targetgen.MustKahrisma()
	dup := `
	.global main
main:
	ret
`
	_, err := link.Link(m, []*kelf.File{obj(t, "a.s", dup), obj(t, "b.s", dup)}, link.Defaults())
	if err == nil || !strings.Contains(err.Error(), "multiple definitions") {
		t.Errorf("duplicate main: %v", err)
	}

	undef := `
	.global main
main:
	jal nosuchfunc
	ret
`
	_, err = link.Link(m, []*kelf.File{obj(t, "u.s", undef)}, link.Defaults())
	if err == nil || !strings.Contains(err.Error(), "undefined symbol") {
		t.Errorf("undefined: %v", err)
	}

	opt := link.Defaults()
	opt.Startup = false
	_, err = link.Link(m, []*kelf.File{obj(t, "u.s", dup)}, opt)
	if err == nil || !strings.Contains(err.Error(), `entry symbol "_start" undefined`) {
		t.Errorf("no entry: %v", err)
	}

	opt = link.Defaults()
	opt.EntryISA = "NOPE"
	_, err = link.Link(m, []*kelf.File{obj(t, "u.s", dup)}, opt)
	if err == nil || !strings.Contains(err.Error(), "unknown entry ISA") {
		t.Errorf("bad entry isa: %v", err)
	}

	exe := linkObjs(t, link.Defaults(), obj(t, "m.s", dup))
	_, err = link.Link(m, []*kelf.File{exe}, link.Defaults())
	if err == nil || !strings.Contains(err.Error(), "not a relocatable object") {
		t.Errorf("exec input: %v", err)
	}
}

func TestEntryISAMismatchDetected(t *testing.T) {
	m := targetgen.MustKahrisma()
	src := `
	.isa VLIW4
	.global _start
	.func _start
_start:
	halt
	.endfunc
`
	opt := link.Defaults()
	opt.EntryISA = "RISC"
	_, err := link.Link(m, []*kelf.File{obj(t, "s.s", src)}, opt)
	if err == nil || !strings.Contains(err.Error(), "initial ISA must match") {
		t.Fatalf("mismatch not detected: %v", err)
	}
	opt.EntryISA = "VLIW4"
	exe, err := link.Link(m, []*kelf.File{obj(t, "s.s", src)}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if exe.EntryISA != m.ISAByName("VLIW4").ID {
		t.Errorf("EntryISA = %d", exe.EntryISA)
	}
}

func TestEntryISAOfCrt0(t *testing.T) {
	src := "\t.global main\nmain:\n\tret\n"
	opt := link.Defaults()
	opt.EntryISA = "VLIW2"
	exe := linkObjs(t, opt, obj(t, "m.s", src))
	m := targetgen.MustKahrisma()
	if exe.EntryISA != m.ISAByName("VLIW2").ID {
		t.Fatalf("EntryISA = %d", exe.EntryISA)
	}
	// crt0 instructions are now 2-slot bundles: _start+16 is `jal main`
	// (instr 2 of the bundle sequence: lui, ori, jal at bundle indexes).
	jalWord := word(t, exe, kelf.SecText, 0x1000+2*8)
	if !m.Op("JAL").Match(jalWord) {
		t.Fatalf("VLIW2 crt0 third bundle slot0 = %#x, not JAL", jalWord)
	}
}

func TestDebugSectionsMergedAndRebased(t *testing.T) {
	a := obj(t, "a.s", `
	.global main
	.func main
main:
	.loc "a.c" 5
	nop
	ret
	.endfunc
`)
	b := obj(t, "b.s", `
	.global f2
	.func f2
f2:
	.loc "b.c" 9
	nop
	ret
	.endfunc
`)
	exe := linkObjs(t, link.Defaults(), a, b)
	ft, err := kelf.DecodeFuncTable(exe.Section(kelf.SecFuncs).Data)
	if err != nil {
		t.Fatal(err)
	}
	f2 := exe.Symbol("f2")
	if fi := ft.Lookup(f2.Value); fi == nil || fi.Name != "f2" {
		t.Fatalf("functable missing rebased f2: %+v", ft.Funcs)
	}
	sm, err := kelf.DecodeLineMap(exe.Section(kelf.SecSrcMap).Data)
	if err != nil {
		t.Fatal(err)
	}
	if file, line, ok := sm.Lookup(f2.Value); !ok || file != "b.c" || line != 9 {
		t.Fatalf("srcmap at f2 = %s:%d,%v", file, line, ok)
	}
	mainSym := exe.Symbol("main")
	if file, line, ok := sm.Lookup(mainSym.Value); !ok || file != "a.c" || line != 5 {
		t.Fatalf("srcmap at main = %s:%d,%v", file, line, ok)
	}
}

func TestExecRoundTripsThroughELF(t *testing.T) {
	exe := linkObjs(t, link.Defaults(), obj(t, "m.s", mainSrc), obj(t, "h.s", helperSrc))
	b, err := exe.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := kelf.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != exe.Entry || got.EntryISA != exe.EntryISA {
		t.Fatal("entry lost in round trip")
	}
	if got.Section(kelf.SecText).Addr != exe.Section(kelf.SecText).Addr {
		t.Fatal("text addr lost")
	}
}
