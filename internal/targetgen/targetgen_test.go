package targetgen_test

import (
	"strings"
	"testing"

	"repro/internal/adl"
	"repro/internal/targetgen"
)

func TestKahrismaElaborates(t *testing.T) {
	m, err := targetgen.Kahrisma()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Ops) != 47 {
		t.Errorf("global op count = %d, want 47", len(m.Ops))
	}
	for _, a := range m.ISAs {
		if len(a.Ops) != len(m.Ops) {
			t.Errorf("ISA %s operation table size %d != %d", a.Name, len(a.Ops), len(m.Ops))
		}
		if a.Op("SWT") == nil {
			t.Errorf("ISA %s missing SWITCHTARGET", a.Name)
		}
	}
	if m.Op("ADD").ConstMask != 0xFC0007FF {
		t.Errorf("ADD const mask = %#x", m.Op("ADD").ConstMask)
	}
	if m.Op("ADDI").ConstMask != 0xFC000000 {
		t.Errorf("ADDI const mask = %#x", m.Op("ADDI").ConstMask)
	}
}

func TestMustKahrisma(t *testing.T) {
	if targetgen.MustKahrisma() == nil {
		t.Fatal("nil model")
	}
}

const minimalPrefix = `
architecture T
registers G { count 32 width 32 zero r0 }
format I {
  field opcode 31:26 const
  field rd 25:21 reg dst
  field rs1 20:16 reg src1
  field imm 15:0 imm imm signed
}
`

func elaborate(t *testing.T, src string) error {
	t.Helper()
	doc, err := adl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = targetgen.Elaborate(doc)
	return err
}

func wantErr(t *testing.T, src, sub string) {
	t.Helper()
	err := elaborate(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q, got nil", sub)
	}
	if !strings.Contains(err.Error(), sub) {
		t.Fatalf("error %q does not contain %q", err, sub)
	}
}

func TestElaborateValidMinimal(t *testing.T) {
	src := minimalPrefix + `
operation ADDI { format I set opcode = 1 class alu latency 1 sem addi }
isa RISC { id 0 issue 1 default }
`
	if err := elaborate(t, src); err != nil {
		t.Fatal(err)
	}
}

func TestElaborateErrors(t *testing.T) {
	op := "operation A { format I set opcode = 1 class alu latency 1 sem x }\n"
	isaDecl := "isa R { id 0 issue 1 }\n"
	cases := []struct {
		name, src, sub string
	}{
		{"no arch", "registers G { count 32 width 32 }", "missing architecture"},
		{"no registers", "architecture T\nformat I { field a 31:0 imm imm }\n" + op + isaDecl, "missing registers"},
		{"bad width", "architecture T\nregisters G { count 32 width 16 }", "32-bit registers"},
		{"bad zero", "architecture T\nregisters G { count 32 width 32 zero r99 }", "zero register"},
		{"bad alias target", "architecture T\nregisters G { count 32 width 32 alias x = r99 }", "unknown register"},
		{"dup alias", "architecture T\nregisters G { count 32 width 32 alias x = r1 alias x = r2 }", "duplicate register alias"},
		{"format gap", minimalPrefix + "format BAD { field opcode 31:26 const }\n" + op + isaDecl, "does not cover all 32 bits"},
		{"format overlap", minimalPrefix + "format BAD { field a 31:0 imm imm field b 3:0 const }\n" + op + isaDecl, "overlaps"},
		{"const with role", minimalPrefix + "format BAD { field a 31:4 imm imm field b 3:0 const dst }", "cannot have roles"},
		{"reg without role", minimalPrefix + "format BAD { field a 31:5 imm imm field b 4:0 reg }", "need a role"},
		{"dup role", minimalPrefix + "format BAD { field a 31:16 imm imm field b 15:0 imm imm }", "duplicate role"},
		{"unknown format", minimalPrefix + "operation A { format Z class alu latency 1 sem x }\n" + isaDecl, "unknown format"},
		{"unknown class", minimalPrefix + "operation A { format I set opcode = 1 class warp latency 1 sem x }\n" + isaDecl, "unknown operation class"},
		{"missing sem", minimalPrefix + "operation A { format I set opcode = 1 class alu latency 1 }\n" + isaDecl, "missing sem"},
		{"bad latency", minimalPrefix + "operation A { format I set opcode = 1 class alu latency 0 sem x }\n" + isaDecl, "latency"},
		{"set unknown field", minimalPrefix + "operation A { format I set zork = 1 class alu latency 1 sem x }\n" + isaDecl, "unknown field"},
		{"set nonconst", minimalPrefix + "operation A { format I set imm = 1 set opcode = 1 class alu latency 1 sem x }\n" + isaDecl, "not const"},
		{"unset const", minimalPrefix + "operation A { format I class alu latency 1 sem x }\n" + isaDecl, "not set"},
		{"const too big", minimalPrefix + "operation A { format I set opcode = 0x100 class alu latency 1 sem x }\n" + isaDecl, "does not fit"},
		{"dup op", minimalPrefix + op + op + isaDecl, "duplicate operation"},
		{"ambiguous", minimalPrefix + op + "operation B { format I set opcode = 1 class alu latency 1 sem y }\n" + isaDecl, "not distinguishable"},
		{"no ops", minimalPrefix + isaDecl, "no operations"},
		{"no isas", minimalPrefix + op, "no ISAs"},
		{"isa no id", minimalPrefix + op + "isa R { issue 1 }", "missing id"},
		{"isa bad issue", minimalPrefix + op + "isa R { id 0 issue 0 }", "issue width"},
		{"dup isa id", minimalPrefix + op + "isa R { id 0 issue 1 }\nisa S { id 0 issue 2 }", "duplicate ISA id"},
		{"two defaults", minimalPrefix + op + "isa R { id 0 issue 1 default }\nisa S { id 1 issue 2 default }", "more than one default"},
		{"bad implicit", minimalPrefix + "operation A { format I set opcode = 1 class alu latency 1 sem x reads qq }\n" + isaDecl, "unknown register"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { wantErr(t, tc.src, tc.sub) })
	}
}
