// Package targetgen is the TargetGen utility of the KAHRISMA software
// framework (Sec. IV/V of the paper): it processes an ADL description
// and generates the retargeting artifacts — the register table and one
// operation table per ISA, each entry carrying the operation's name,
// size, fields, implicit registers and the key of its simulation
// function. (The paper emits C++ source fragments compiled into the
// tools; here the generated artifact is the elaborated isa.Model that
// the compiler, assembler, linker and simulator consume directly.)
package targetgen

import (
	"fmt"
	"sync"

	"repro/internal/adl"
	"repro/internal/analysis"
	"repro/internal/isa"
)

// Elaborate validates an ADL document and builds the architecture model.
// Beyond the structural validation of the build steps, the elaborated
// model must pass the analysis layer's model checks (ambiguous
// constant-field encodings, shadowed operations, field bounds — see
// analysis.CheckModel): the first error-severity finding aborts
// elaboration.
func Elaborate(doc *adl.Document) (*isa.Model, error) {
	m, err := build(doc)
	if err != nil {
		return nil, err
	}
	for _, d := range analysis.CheckModel(m).Diags {
		if d.Severity == analysis.Error {
			return nil, fmt.Errorf("targetgen: %s", d.Msg)
		}
	}
	return m, nil
}

// ElaborateLenient builds the model like Elaborate but does not refuse
// error-severity analysis findings: structural defects (bad formats,
// unknown fields, ...) still fail, while detection and bounds problems
// are returned as the accompanying report. klint uses it to produce
// diagnostics for ADL descriptions Elaborate would reject outright.
func ElaborateLenient(doc *adl.Document) (*isa.Model, *analysis.Report, error) {
	m, err := build(doc)
	if err != nil {
		return nil, nil, err
	}
	r := analysis.CheckModel(m)
	r.Sort()
	return m, r, nil
}

func build(doc *adl.Document) (*isa.Model, error) {
	if doc.Architecture == "" {
		return nil, fmt.Errorf("targetgen: missing architecture name")
	}
	m := isa.NewModel(doc.Architecture)

	if err := buildRegisters(m, doc); err != nil {
		return nil, err
	}
	if err := buildFormats(m, doc); err != nil {
		return nil, err
	}
	if err := buildOperations(m, doc); err != nil {
		return nil, err
	}
	if err := buildISAs(m, doc); err != nil {
		return nil, err
	}
	return m, nil
}

func buildRegisters(m *isa.Model, doc *adl.Document) error {
	rd := doc.Registers
	if rd == nil {
		return fmt.Errorf("targetgen: missing registers block")
	}
	if rd.Count <= 0 || rd.Count > 64 {
		return fmt.Errorf("targetgen: register count %d out of range", rd.Count)
	}
	if rd.Width != 32 {
		return fmt.Errorf("targetgen: only 32-bit registers are supported, got %d", rd.Width)
	}
	rf := isa.NewRegisterFile(rd.Name, rd.Count, rd.Width)
	for _, al := range rd.Aliases {
		idx, ok := canonicalIndex(al.Target, rd.Count)
		if !ok {
			return fmt.Errorf("targetgen: alias %s: unknown register %q", al.Alias, al.Target)
		}
		if err := rf.AddAlias(al.Alias, idx); err != nil {
			return err
		}
	}
	if rd.Zero != "" {
		idx, ok := rf.Lookup(rd.Zero)
		if !ok {
			return fmt.Errorf("targetgen: zero register %q not found", rd.Zero)
		}
		rf.ZeroReg = idx
	}
	m.Regs = rf
	return nil
}

func canonicalIndex(name string, count int) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(name, "r%d", &n); err != nil {
		return 0, false
	}
	if fmt.Sprintf("r%d", n) != name || n < 0 || n >= count {
		return 0, false
	}
	return n, true
}

func buildFormats(m *isa.Model, doc *adl.Document) error {
	for _, fd := range doc.Formats {
		if _, dup := m.Formats[fd.Name]; dup {
			return fmt.Errorf("targetgen: duplicate format %q", fd.Name)
		}
		fm := &isa.Format{Name: fd.Name}
		var covered uint32
		roles := map[isa.FieldRole]bool{}
		for _, f := range fd.Fields {
			if f.Hi < f.Lo || f.Hi > 31 || f.Lo < 0 {
				return fmt.Errorf("targetgen: format %s field %s: bad bit range %d:%d",
					fd.Name, f.Name, f.Hi, f.Lo)
			}
			field := &isa.Field{Name: f.Name, Hi: uint8(f.Hi), Lo: uint8(f.Lo), Signed: f.Signed}
			switch f.Kind {
			case "const":
				field.Kind = isa.FieldConst
			case "reg":
				field.Kind = isa.FieldReg
			case "imm":
				field.Kind = isa.FieldImm
			default:
				return fmt.Errorf("targetgen: format %s field %s: unknown kind %q",
					fd.Name, f.Name, f.Kind)
			}
			switch f.Role {
			case "":
				field.Role = isa.RoleNone
			case "dst":
				field.Role = isa.RoleDst
			case "src1":
				field.Role = isa.RoleSrc1
			case "src2":
				field.Role = isa.RoleSrc2
			case "imm":
				field.Role = isa.RoleImm
			default:
				return fmt.Errorf("targetgen: format %s field %s: unknown role %q",
					fd.Name, f.Name, f.Role)
			}
			if field.Kind == isa.FieldConst && field.Role != isa.RoleNone {
				return fmt.Errorf("targetgen: format %s field %s: const fields cannot have roles",
					fd.Name, f.Name)
			}
			if field.Kind == isa.FieldReg && field.Role == isa.RoleNone {
				return fmt.Errorf("targetgen: format %s field %s: register fields need a role",
					fd.Name, f.Name)
			}
			if field.Role != isa.RoleNone {
				if roles[field.Role] {
					return fmt.Errorf("targetgen: format %s: duplicate role %s",
						fd.Name, field.Role)
				}
				roles[field.Role] = true
			}
			mask := field.Mask()
			if covered&mask != 0 {
				return fmt.Errorf("targetgen: format %s field %s overlaps another field",
					fd.Name, f.Name)
			}
			covered |= mask
			fm.Fields = append(fm.Fields, field)
		}
		if covered != 0xFFFFFFFF {
			return fmt.Errorf("targetgen: format %s does not cover all 32 bits (mask %08x)",
				fd.Name, covered)
		}
		m.Formats[fd.Name] = fm
	}
	return nil
}

func buildOperations(m *isa.Model, doc *adl.Document) error {
	for _, od := range doc.Operations {
		fm, ok := m.Formats[od.Format]
		if !ok {
			return fmt.Errorf("targetgen: operation %s: unknown format %q", od.Name, od.Format)
		}
		class, err := isa.ParseClass(od.Class)
		if err != nil {
			return fmt.Errorf("targetgen: operation %s: %v", od.Name, err)
		}
		if od.Sem == "" {
			return fmt.Errorf("targetgen: operation %s: missing sem key", od.Name)
		}
		if od.Latency < 1 {
			return fmt.Errorf("targetgen: operation %s: latency must be >= 1", od.Name)
		}
		op := &isa.Operation{
			Name:    od.Name,
			Format:  fm,
			Class:   class,
			Latency: od.Latency,
			SemKey:  od.Sem,
			Consts:  make(map[string]uint32),
		}
		for _, set := range od.Sets {
			f := fm.Field(set.Field)
			if f == nil {
				return fmt.Errorf("targetgen: operation %s: set of unknown field %q",
					od.Name, set.Field)
			}
			if f.Kind != isa.FieldConst {
				return fmt.Errorf("targetgen: operation %s: field %q is not const",
					od.Name, set.Field)
			}
			if _, dup := op.Consts[set.Field]; dup {
				return fmt.Errorf("targetgen: operation %s: duplicate set of %q",
					od.Name, set.Field)
			}
			if !f.Fits(int64(set.Value)) {
				return fmt.Errorf("targetgen: operation %s: value 0x%x does not fit field %q",
					od.Name, set.Value, set.Field)
			}
			op.Consts[set.Field] = set.Value
		}
		for _, f := range fm.Fields {
			switch f.Kind {
			case isa.FieldConst:
				v, ok := op.Consts[f.Name]
				if !ok {
					return fmt.Errorf("targetgen: operation %s: const field %q not set",
						od.Name, f.Name)
				}
				op.ConstMask |= f.Mask()
				op.ConstBits = f.Insert(op.ConstBits, v)
			case isa.FieldReg, isa.FieldImm:
				switch f.Role {
				case isa.RoleDst:
					op.DstField = f
				case isa.RoleSrc1:
					op.Src1Field = f
				case isa.RoleSrc2:
					op.Src2Field = f
				case isa.RoleImm:
					op.ImmField = f
				}
			}
		}
		if op.ImplicitReads, err = resolveImplicit(m, od.Reads); err != nil {
			return fmt.Errorf("targetgen: operation %s reads: %v", od.Name, err)
		}
		if op.ImplicitWrites, err = resolveImplicit(m, od.Writes); err != nil {
			return fmt.Errorf("targetgen: operation %s writes: %v", od.Name, err)
		}
		if err := m.AddOp(op); err != nil {
			return err
		}
	}
	if len(m.Ops) == 0 {
		return fmt.Errorf("targetgen: no operations declared")
	}
	return nil
}

func resolveImplicit(m *isa.Model, names []string) ([]int, error) {
	var out []int
	for _, n := range names {
		if n == "ip" {
			out = append(out, isa.RegIP)
			continue
		}
		idx, ok := m.Regs.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("unknown register %q", n)
		}
		out = append(out, idx)
	}
	return out, nil
}

func buildISAs(m *isa.Model, doc *adl.Document) error {
	if len(doc.ISAs) == 0 {
		return fmt.Errorf("targetgen: no ISAs declared")
	}
	defaults := 0
	for _, id := range doc.ISAs {
		if id.ID < 0 {
			return fmt.Errorf("targetgen: isa %s: missing id", id.Name)
		}
		if id.Issue < 1 || id.Issue > 16 {
			return fmt.Errorf("targetgen: isa %s: issue width %d out of range", id.Name, id.Issue)
		}
		if id.Default {
			defaults++
		}
		a := &isa.ISA{Name: id.Name, ID: id.ID, Issue: id.Issue, Default: id.Default}
		// Each ISA gets its own operation table (Sec. V: "each supported
		// ISA has its own operation table and only the active operation
		// table is used during instruction detection").
		table := make([]*isa.Operation, len(m.Ops))
		copy(table, m.Ops)
		a.SetOps(table)
		if err := m.AddISA(a); err != nil {
			return err
		}
	}
	if defaults > 1 {
		return fmt.Errorf("targetgen: more than one default ISA")
	}
	return nil
}

var (
	kahrismaOnce  sync.Once
	kahrismaModel *isa.Model
	kahrismaErr   error
)

// Kahrisma parses and elaborates the built-in KAHRISMA ADL description.
// The returned model is shared and must be treated as read-only (it is
// immutable after elaboration, so concurrent simulations may share it).
func Kahrisma() (*isa.Model, error) {
	kahrismaOnce.Do(func() {
		doc, err := adl.Parse(adl.Kahrisma)
		if err != nil {
			kahrismaErr = err
			return
		}
		kahrismaModel, kahrismaErr = Elaborate(doc)
	})
	return kahrismaModel, kahrismaErr
}

// MustKahrisma is Kahrisma but panics on error; intended for tests,
// examples and tools where the built-in description must be valid.
func MustKahrisma() *isa.Model {
	m, err := Kahrisma()
	if err != nil {
		panic(err)
	}
	return m
}
