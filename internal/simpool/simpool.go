// Package simpool is the concurrent batch simulation engine: a fixed
// worker pool that runs many independent simulations — same or
// different programs, models and memory hierarchies — across OS
// threads, the way MGSim drives multi-core fabrics and VADL's generated
// simulators run batch ISA evaluations.
//
// Sharing rules (see docs/simpool.md):
//
//   - The elaborated isa.Model and the loaded sim.Program are immutable
//     after construction and are shared by every worker without copies
//     or locks.
//   - Everything with run-time state is per job: the sim.CPU (register
//     file, sparse memory, decode cache, prediction pointer), the cycle
//     models and their memory hierarchies, trace writers and stdio.
//     Job.Attach runs on the worker goroutine so this per-job state is
//     also *built* off the caller's thread.
//
// Because no mutable state crosses jobs, a job's result is bit-identical
// to the same configuration run serially, regardless of worker count or
// scheduling order.
package simpool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ErrClosed reports a submission to a pool whose Close has already
// begun. Tickets of such submissions carry an error wrapping ErrClosed,
// so callers classify it with errors.Is instead of matching text.
var ErrClosed = errors.New("simpool: pool is closed")

// Job is one simulation to run: shared immutable inputs plus hooks that
// build and observe the per-job state.
type Job struct {
	// Model and Prog are shared, read-only artifacts; many jobs may
	// reference the same instances concurrently.
	Model *isa.Model
	Prog  *sim.Program
	// Opts configure the private CPU. Opts.Stdout/Stdin, if set, must
	// not be shared with other jobs unless they are concurrency-safe.
	Opts sim.Options
	// Attach, when non-nil, runs on the worker goroutine after the CPU
	// is built and before the run starts — the place to construct and
	// attach per-job cycle models, hierarchies and trace writers.
	Attach func(c *sim.CPU) error
	// Timeout, when positive, bounds the job's wall-clock time on top of
	// the submission context.
	Timeout time.Duration
	// OnDone, when non-nil, runs on the worker goroutine after the job
	// finished, before its ticket unblocks — the place to harvest
	// per-job results without racing Wait callers.
	OnDone func(Result)
	// Label tags the job in results and errors.
	Label string
}

// Result is the outcome of one job.
type Result struct {
	Label  string
	CPU    *sim.CPU // nil when construction failed or the job never ran
	Status sim.ExitStatus
	Wall   time.Duration // simulation wall time on the worker
	Err    error
}

// Ticket is a handle to a submitted job.
type Ticket struct {
	done chan struct{}
	res  Result
}

// Wait blocks until the job finished (or was aborted) and returns its
// result. Wait may be called from any goroutine, any number of times.
func (t *Ticket) Wait() Result {
	<-t.done
	return t.res
}

// Done returns a channel closed when the job has finished.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Stats is a point-in-time snapshot of the pool's counters. Simulation
// counters (Instructions, Operations, cache counters, Wall) accumulate
// over completed jobs only.
type Stats struct {
	Workers int
	Queued  int64 // submitted, not yet picked up by a worker
	Running int64
	Done    int64 // completed, successfully or not
	Failed  int64 // completed with an error

	// InFlight is the number of accepted but unfinished jobs
	// (Queued + Running) and QueueCap the buffered capacity of the
	// submission queue — the snapshot a serving layer exports as its
	// queue-depth/backpressure metrics.
	InFlight int64
	QueueCap int

	Instructions   uint64
	Operations     uint64
	CacheLookups   uint64
	CacheHits      uint64
	CacheEvictions uint64
	PredHits       uint64

	// Wall is the summed per-job simulation time — on an idle machine
	// roughly elapsed time × busy workers.
	Wall time.Duration
}

// DecodeCacheHitRate aggregates the decode-cache hit rate across all
// completed jobs (0 when no lookups happened).
func (s Stats) DecodeCacheHitRate() float64 {
	if s.CacheLookups == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheLookups)
}

// PredictionHitRate aggregates the instruction-prediction hit rate
// across all completed jobs: predicted fetches over total fetches
// (prediction hits bypass the decode-cache lookup, so the denominator
// is their sum; 0 when nothing was fetched).
func (s Stats) PredictionHitRate() float64 {
	total := s.PredHits + s.CacheLookups
	if total == 0 {
		return 0
	}
	return float64(s.PredHits) / float64(total)
}

type task struct {
	ctx    context.Context
	job    Job
	ticket *Ticket
}

// Pool runs submitted jobs on a fixed set of worker goroutines.
type Pool struct {
	workers int
	jobs    chan task
	workWG  sync.WaitGroup // worker goroutines
	jobWG   sync.WaitGroup // outstanding jobs

	queued  atomic.Int64
	running atomic.Int64
	done    atomic.Int64
	failed  atomic.Int64

	mu     sync.Mutex
	closed bool
	agg    Stats // accumulated simulation counters (under mu)
}

// New starts a pool with the given number of workers; workers <= 0
// selects GOMAXPROCS. Close must be called to release the workers.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		// A deep queue keeps Submit non-blocking for typical batch
		// sizes; submissions beyond it apply back-pressure.
		jobs: make(chan task, 4*workers),
	}
	for i := 0; i < workers; i++ {
		p.workWG.Add(1)
		go p.worker()
	}
	return p
}

// Submit enqueues one job and returns immediately with its ticket.
// ctx cancels the job whether it is still queued or already running
// (running jobs stop within the simulator's cancellation granularity).
// Submitting to a closed pool returns a ticket whose result carries an
// error.
func (p *Pool) Submit(ctx context.Context, j Job) *Ticket {
	t := &Ticket{done: make(chan struct{})}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		t.res = Result{Label: j.Label, Err: fmt.Errorf("%s: %w", labelOr(j.Label), ErrClosed)}
		close(t.done)
		return t
	}
	p.jobWG.Add(1)
	p.queued.Add(1)
	p.mu.Unlock()
	p.jobs <- task{ctx: ctx, job: j, ticket: t}
	return t
}

// SubmitBatch enqueues jobs in order and returns their tickets.
func (p *Pool) SubmitBatch(ctx context.Context, jobs []Job) []*Ticket {
	out := make([]*Ticket, len(jobs))
	for i, j := range jobs {
		out[i] = p.Submit(ctx, j)
	}
	return out
}

// Wait blocks until every job submitted so far has completed. The pool
// stays open for further submissions.
func (p *Pool) Wait() { p.jobWG.Wait() }

// Close waits for outstanding jobs and stops the workers. Further
// submissions fail fast. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.workWG.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.jobWG.Wait()
	close(p.jobs)
	p.workWG.Wait()
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	s := p.agg
	p.mu.Unlock()
	s.Workers = p.workers
	s.Queued = p.queued.Load()
	s.Running = p.running.Load()
	s.Done = p.done.Load()
	s.Failed = p.failed.Load()
	s.InFlight = s.Queued + s.Running
	s.QueueCap = cap(p.jobs)
	return s
}

func (p *Pool) worker() {
	defer p.workWG.Done()
	for t := range p.jobs {
		p.queued.Add(-1)
		p.running.Add(1)
		res := runJob(t.ctx, t.job)
		p.running.Add(-1)
		p.done.Add(1)
		if res.Err != nil {
			p.failed.Add(1)
		}
		if res.CPU != nil {
			p.mu.Lock()
			p.agg.Instructions += res.CPU.Stats.Instructions
			p.agg.Operations += res.CPU.Stats.Operations
			p.agg.CacheLookups += res.CPU.Stats.CacheLookups
			p.agg.CacheHits += res.CPU.Stats.CacheHits
			p.agg.CacheEvictions += res.CPU.Stats.CacheEvictions
			p.agg.PredHits += res.CPU.Stats.PredHits
			p.agg.Wall += res.Wall
			p.mu.Unlock()
		}
		if t.job.OnDone != nil {
			t.job.OnDone(res)
		}
		t.ticket.res = res
		close(t.ticket.done)
		p.jobWG.Done()
	}
}

// runJob executes one job on the calling (worker) goroutine. Jobs with
// a live event sink (Opts.EventSink) always see a terminal done event:
// the CPU publishes it when the run starts, and the pre-run failure
// paths here (canceled while queued, CPU construction, Attach) publish
// it themselves so subscribers of a job that never ran still observe a
// clean stream end.
func runJob(ctx context.Context, j Job) Result {
	res := Result{Label: j.Label}
	if ctx == nil {
		ctx = context.Background()
	}
	fail := func(err error) Result {
		res.Err = err
		if j.Opts.EventSink != nil {
			j.Opts.EventSink.Done(trace.Done{Error: err.Error()})
		}
		return res
	}
	// A job canceled while queued never builds its CPU.
	if err := ctx.Err(); err != nil {
		return fail(fmt.Errorf("simpool: %s: %w before start: %w", labelOr(j.Label), sim.ErrCanceled, err))
	}
	if j.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.Timeout)
		defer cancel()
	}
	c, err := sim.New(j.Model, j.Prog, j.Opts)
	if err != nil {
		return fail(fmt.Errorf("simpool: %s: %w", labelOr(j.Label), err))
	}
	res.CPU = c
	if j.Attach != nil {
		if err := j.Attach(c); err != nil {
			return fail(fmt.Errorf("simpool: %s: attach: %w", labelOr(j.Label), err))
		}
	}
	start := time.Now()
	st, err := c.RunContext(ctx)
	res.Wall = time.Since(start)
	res.Status = st
	if err != nil {
		res.Err = fmt.Errorf("simpool: %s: %w", labelOr(j.Label), err)
	}
	return res
}

func labelOr(label string) string {
	if label == "" {
		return "job"
	}
	return label
}
