// Package simpool is the concurrent batch simulation engine: a fixed
// worker pool that runs many independent simulations — same or
// different programs, models and memory hierarchies — across OS
// threads, the way MGSim drives multi-core fabrics and VADL's generated
// simulators run batch ISA evaluations.
//
// Sharing rules (see docs/simpool.md):
//
//   - The elaborated isa.Model and the loaded sim.Program are immutable
//     after construction and are shared by every worker without copies
//     or locks.
//   - Everything with run-time state is per job: the sim.CPU (register
//     file, sparse memory, decode cache, prediction pointer), the cycle
//     models and their memory hierarchies, trace writers and stdio.
//     Job.Attach runs on the worker goroutine so this per-job state is
//     also *built* off the caller's thread.
//
// Because no mutable state crosses jobs, a job's result is bit-identical
// to the same configuration run serially, regardless of worker count or
// scheduling order. Jobs with Recycle set additionally draw their CPU
// allocations (memory pages, decode-cache buckets) from a per-(model,
// program) arena; recycled state is reset to construction values before
// reuse, so the invariant holds for them too — only allocations are
// shared across jobs, never contents.
//
// The engine avoids cross-worker contention three ways: batch dispatch
// hands each worker a run of jobs per channel operation instead of one;
// the throughput counters live in per-worker cache-line-padded shards
// merged only on Stats(); and recycling keeps steady-state batches off
// the allocator entirely.
package simpool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ErrClosed reports a submission to a pool whose Close has already
// begun. Tickets of such submissions carry an error wrapping ErrClosed,
// so callers classify it with errors.Is instead of matching text.
var ErrClosed = errors.New("simpool: pool is closed")

// Job is one simulation to run: shared immutable inputs plus hooks that
// build and observe the per-job state.
type Job struct {
	// Model and Prog are shared, read-only artifacts; many jobs may
	// reference the same instances concurrently.
	Model *isa.Model
	Prog  *sim.Program
	// Opts configure the private CPU. Opts.Stdout/Stdin, if set, must
	// not be shared with other jobs unless they are concurrency-safe.
	Opts sim.Options
	// Attach, when non-nil, runs on the worker goroutine after the CPU
	// is built and before the run starts — the place to construct and
	// attach per-job cycle models, hierarchies and trace writers.
	Attach func(c *sim.CPU) error
	// Timeout, when positive, bounds the job's wall-clock time on top of
	// the submission context.
	Timeout time.Duration
	// OnDone, when non-nil, runs on the worker goroutine after the job
	// finished, before its ticket unblocks — the place to harvest
	// per-job results without racing Wait callers. With Recycle set it
	// is also the last point at which Result.CPU is valid.
	OnDone func(Result)
	// Recycle returns the job's CPU to a per-(Model, Prog) arena after
	// OnDone, so later jobs of the same executable reuse its memory
	// pages and decode-cache buckets instead of reallocating them.
	// Recycled jobs publish Result.CPU == nil on their tickets; harvest
	// the CPU (if needed) in OnDone, or read Result.Stats, which is
	// always populated.
	Recycle bool
	// Label tags the job in results and errors.
	Label string
}

// Result is the outcome of one job.
type Result struct {
	Label  string
	CPU    *sim.CPU // nil when construction failed, the job never ran, or Recycle reclaimed it
	Status sim.ExitStatus
	// Stats is a copy of the CPU's final counters, valid even after the
	// CPU itself has been recycled.
	Stats  sim.Stats
	Wall   time.Duration // simulation wall time on the worker
	Queued time.Duration // time spent in the dispatch queue before a worker picked the job up
	Err    error
}

// Ticket is a handle to a submitted job.
type Ticket struct {
	done chan struct{}
	res  Result
}

// Wait blocks until the job finished (or was aborted) and returns its
// result. Wait may be called from any goroutine, any number of times.
func (t *Ticket) Wait() Result {
	<-t.done
	return t.res
}

// Done returns a channel closed when the job has finished.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// resolve publishes a result and unblocks waiters.
func (t *Ticket) resolve(res Result) {
	t.res = res
	close(t.done)
}

// Stats is a point-in-time snapshot of the pool's counters. Simulation
// counters (Instructions, Operations, cache counters, Wall) accumulate
// over completed jobs only.
type Stats struct {
	Workers int
	Queued  int64 // submitted, not yet picked up by a worker
	Running int64
	Done    int64 // completed, successfully or not
	Failed  int64 // completed with an error

	// InFlight is the number of accepted but unfinished jobs
	// (Queued + Running) and QueueCap the buffered capacity of the
	// dispatch queue in job runs — the snapshot a serving layer exports
	// as its queue-depth/backpressure metrics.
	InFlight int64
	QueueCap int

	Instructions   uint64
	Operations     uint64
	CacheLookups   uint64
	CacheHits      uint64
	CacheEvictions uint64
	PredHits       uint64

	// Wall is the summed per-job simulation time — on an idle machine
	// roughly elapsed time × busy workers.
	Wall time.Duration
}

// DecodeCacheHitRate aggregates the decode-cache hit rate across all
// completed jobs (0 when no lookups happened).
func (s Stats) DecodeCacheHitRate() float64 {
	if s.CacheLookups == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheLookups)
}

// PredictionHitRate aggregates the instruction-prediction hit rate
// across all completed jobs: predicted fetches over total fetches
// (prediction hits bypass the decode-cache lookup, so the denominator
// is their sum; 0 when nothing was fetched).
func (s Stats) PredictionHitRate() float64 {
	total := s.PredHits + s.CacheLookups
	if total == 0 {
		return 0
	}
	return float64(s.PredHits) / float64(total)
}

// task is one dispatch unit: a run of jobs a worker executes in order.
// Batch submissions chunk their jobs into runs so workers contend on
// the channel once per run instead of once per job.
type task struct {
	ctx     context.Context
	jobs    []Job
	tickets []*Ticket
	batch   *Batch    // nil for plain Submit
	enq     time.Time // when the run entered the dispatch queue (queue-wait telemetry)
}

// shard is one worker's private slice of the pool counters. The padding
// keeps neighbouring shards on distinct cache lines (64-byte lines; the
// ten counters span 80 bytes, padded to 128), so workers bumping their
// own counters never write-share a line.
type shard struct {
	running atomic.Int64
	done    atomic.Int64
	failed  atomic.Int64

	instructions   atomic.Uint64
	operations     atomic.Uint64
	cacheLookups   atomic.Uint64
	cacheHits      atomic.Uint64
	cacheEvictions atomic.Uint64
	predHits       atomic.Uint64
	wall           atomic.Int64 // nanoseconds

	_ [48]byte
}

// arenaKey identifies a recycling arena by the shared immutable inputs
// whose identity fixes the shape of a job's CPU state: the elaborated
// model and the loaded program.
type arenaKey struct {
	model *isa.Model
	prog  *sim.Program
}

// Pool runs submitted jobs on a fixed set of worker goroutines.
type Pool struct {
	workers int
	jobs    chan task
	workWG  sync.WaitGroup // worker goroutines
	jobWG   sync.WaitGroup // outstanding jobs

	queued atomic.Int64
	shards []shard

	// arenas maps arenaKey to *sync.Pool of *sim.CPU for Recycle jobs.
	arenas sync.Map

	mu     sync.Mutex
	closed bool
}

// New starts a pool with the given number of workers; workers <= 0
// selects GOMAXPROCS. Close must be called to release the workers.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		// A deep queue keeps submission non-blocking for typical batch
		// sizes; submissions beyond it apply back-pressure. The unit is
		// a job run (1..maxChunk jobs).
		jobs:   make(chan task, 4*workers),
		shards: make([]shard, workers),
	}
	for i := 0; i < workers; i++ {
		p.workWG.Add(1)
		go p.worker(i)
	}
	return p
}

// Submit enqueues one job and returns immediately with its ticket.
// ctx cancels the job whether it is still queued or already running
// (running jobs stop within the simulator's cancellation granularity).
// Submitting to a closed pool returns a ticket whose result carries an
// error wrapping ErrClosed.
func (p *Pool) Submit(ctx context.Context, j Job) *Ticket {
	t := &Ticket{done: make(chan struct{})}
	if !p.admit(1) {
		t.resolve(Result{Label: j.Label, Err: fmt.Errorf("%s: %w", labelOr(j.Label), ErrClosed)})
		return t
	}
	p.jobs <- task{ctx: ctx, jobs: []Job{j}, tickets: []*Ticket{t}, enq: time.Now()}
	return t
}

// Batch is the handle to one SubmitBatch call: an aggregate view over
// the submitted jobs with completion signalling, index-aligned results
// and merged counters.
type Batch struct {
	pool    *Pool
	tickets []*Ticket
	pending atomic.Int64
	done    chan struct{}
}

// SubmitBatch enqueues jobs in order and returns the batch handle. The
// jobs are dispatched to workers in runs (contiguous chunks of the
// batch), so large batches cost a handful of channel operations instead
// of one per job; per-job results remain independent and index-aligned.
// Submitting to a closed pool resolves every ticket with an error
// wrapping ErrClosed; the returned batch is already complete.
func (p *Pool) SubmitBatch(ctx context.Context, jobs []Job) *Batch {
	b := &Batch{pool: p, tickets: make([]*Ticket, len(jobs)), done: make(chan struct{})}
	for i := range b.tickets {
		b.tickets[i] = &Ticket{done: make(chan struct{})}
	}
	b.pending.Store(int64(len(jobs)))
	if len(jobs) == 0 {
		close(b.done)
		return b
	}
	if !p.admit(len(jobs)) {
		for i := range jobs {
			b.tickets[i].resolve(Result{Label: jobs[i].Label,
				Err: fmt.Errorf("%s: %w", labelOr(jobs[i].Label), ErrClosed)})
		}
		close(b.done)
		return b
	}
	// Copy the jobs so later caller-side mutation of the input slice
	// cannot race the workers.
	owned := make([]Job, len(jobs))
	copy(owned, jobs)
	chunk := dispatchChunk(len(owned), p.workers)
	for start := 0; start < len(owned); start += chunk {
		end := start + chunk
		if end > len(owned) {
			end = len(owned)
		}
		p.jobs <- task{ctx: ctx, jobs: owned[start:end], tickets: b.tickets[start:end], batch: b, enq: time.Now()}
	}
	return b
}

// admit accounts n accepted jobs; it reports false when the pool is
// closed.
func (p *Pool) admit(n int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.jobWG.Add(n)
	p.queued.Add(int64(n))
	return true
}

// maxChunk caps the dispatch run length so one slow run cannot strand a
// large contiguous slice of the batch behind a busy worker.
const maxChunk = 32

// dispatchChunk sizes the job runs of an n-job batch: roughly two runs
// per worker (so the tail of the batch still load-balances), clamped to
// [1, maxChunk].
func dispatchChunk(n, workers int) int {
	c := n / (2 * workers)
	if c < 1 {
		c = 1
	}
	if c > maxChunk {
		c = maxChunk
	}
	return c
}

// Done returns a channel closed when every job of the batch has
// finished.
func (b *Batch) Done() <-chan struct{} { return b.done }

// Wait blocks until the whole batch finished or ctx is done. It returns
// the batch's first error in submission order (nil when every job
// succeeded); a ctx abort returns ctx.Err() without waiting further —
// the jobs themselves keep running under their submission context.
func (b *Batch) Wait(ctx context.Context) error {
	// A finished batch wins over a done waiting context, so Wait on a
	// completed batch is deterministic.
	select {
	case <-b.done:
		return b.Err()
	default:
	}
	select {
	case <-b.done:
		return b.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Err blocks until the batch finished and returns the first job error
// in submission order, nil when every job succeeded.
func (b *Batch) Err() error {
	for _, t := range b.tickets {
		if r := t.Wait(); r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// Results blocks until the batch finished and returns the per-job
// results, index-aligned with the submitted jobs.
func (b *Batch) Results() []Result {
	out := make([]Result, len(b.tickets))
	for i, t := range b.tickets {
		out[i] = t.Wait()
	}
	return out
}

// Tickets returns the per-job tickets, index-aligned with the submitted
// jobs — for callers that want per-job completion granularity instead
// of the aggregate accessors.
func (b *Batch) Tickets() []*Ticket { return b.tickets }

// Len returns the number of jobs in the batch.
func (b *Batch) Len() int { return len(b.tickets) }

// Stats blocks until the batch finished and returns its merged
// counters: Done/Failed over the batch's own jobs and the simulation
// counters summed over them (unlike Pool.Stats, which aggregates over
// the pool's lifetime).
func (b *Batch) Stats() Stats {
	var s Stats
	s.Workers = b.pool.workers
	s.QueueCap = cap(b.pool.jobs)
	for _, t := range b.tickets {
		r := t.Wait()
		s.Done++
		if r.Err != nil {
			s.Failed++
		}
		s.Instructions += r.Stats.Instructions
		s.Operations += r.Stats.Operations
		s.CacheLookups += r.Stats.CacheLookups
		s.CacheHits += r.Stats.CacheHits
		s.CacheEvictions += r.Stats.CacheEvictions
		s.PredHits += r.Stats.PredHits
		s.Wall += r.Wall
	}
	return s
}

// finishOne is called by workers once per completed batch job; the last
// one closes the batch's done channel.
func (b *Batch) finishOne() {
	if b.pending.Add(-1) == 0 {
		close(b.done)
	}
}

// Wait blocks until every job submitted so far has completed. The pool
// stays open for further submissions.
func (p *Pool) Wait() { p.jobWG.Wait() }

// Close waits for outstanding jobs and stops the workers. Further
// submissions fail fast. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.workWG.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.jobWG.Wait()
	close(p.jobs)
	p.workWG.Wait()
}

// Stats snapshots the pool counters by merging the per-worker shards.
func (p *Pool) Stats() Stats {
	var s Stats
	s.Workers = p.workers
	s.Queued = p.queued.Load()
	for i := range p.shards {
		sh := &p.shards[i]
		s.Running += sh.running.Load()
		s.Done += sh.done.Load()
		s.Failed += sh.failed.Load()
		s.Instructions += sh.instructions.Load()
		s.Operations += sh.operations.Load()
		s.CacheLookups += sh.cacheLookups.Load()
		s.CacheHits += sh.cacheHits.Load()
		s.CacheEvictions += sh.cacheEvictions.Load()
		s.PredHits += sh.predHits.Load()
		s.Wall += time.Duration(sh.wall.Load())
	}
	s.InFlight = s.Queued + s.Running
	s.QueueCap = cap(p.jobs)
	return s
}

// arena returns the recycling arena for a job's (model, program) pair.
func (p *Pool) arena(j *Job) *sync.Pool {
	k := arenaKey{model: j.Model, prog: j.Prog}
	if v, ok := p.arenas.Load(k); ok {
		return v.(*sync.Pool)
	}
	v, _ := p.arenas.LoadOrStore(k, &sync.Pool{})
	return v.(*sync.Pool)
}

func (p *Pool) worker(id int) {
	defer p.workWG.Done()
	sh := &p.shards[id]
	for t := range p.jobs {
		// Queue wait is measured per run at pickup: the first job of a
		// run waited the full interval; later jobs of the same run are
		// held by their predecessors, not the queue, and reuse it.
		queued := time.Since(t.enq)
		for i := range t.jobs {
			j := &t.jobs[i]
			p.queued.Add(-1)
			sh.running.Add(1)
			res := p.runJob(t.ctx, j)
			res.Queued = queued
			sh.running.Add(-1)
			sh.done.Add(1)
			if res.Err != nil {
				sh.failed.Add(1)
			}
			if res.CPU != nil {
				sh.instructions.Add(res.Stats.Instructions)
				sh.operations.Add(res.Stats.Operations)
				sh.cacheLookups.Add(res.Stats.CacheLookups)
				sh.cacheHits.Add(res.Stats.CacheHits)
				sh.cacheEvictions.Add(res.Stats.CacheEvictions)
				sh.predHits.Add(res.Stats.PredHits)
				sh.wall.Add(int64(res.Wall))
			}
			if j.OnDone != nil {
				j.OnDone(res)
			}
			if j.Recycle && res.CPU != nil {
				p.arena(j).Put(res.CPU)
				res.CPU = nil
			}
			t.tickets[i].resolve(res)
			if t.batch != nil {
				t.batch.finishOne()
			}
			p.jobWG.Done()
		}
	}
}

// runJob executes one job on the calling (worker) goroutine. Jobs with
// a live event sink (Opts.EventSink) always see a terminal done event:
// the CPU publishes it when the run starts, and the pre-run failure
// paths here (canceled while queued, CPU construction, Attach) publish
// it themselves so subscribers of a job that never ran still observe a
// clean stream end.
func (p *Pool) runJob(ctx context.Context, j *Job) Result {
	res := Result{Label: j.Label}
	if ctx == nil {
		ctx = context.Background()
	}
	fail := func(err error) Result {
		res.Err = err
		if j.Opts.EventSink != nil {
			j.Opts.EventSink.Done(trace.Done{Error: err.Error()})
		}
		return res
	}
	// A job canceled while queued never builds its CPU.
	if err := ctx.Err(); err != nil {
		return fail(fmt.Errorf("simpool: %s: %w before start: %w", labelOr(j.Label), sim.ErrCanceled, err))
	}
	if j.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.Timeout)
		defer cancel()
	}
	c, err := p.acquireCPU(j)
	if err != nil {
		return fail(fmt.Errorf("simpool: %s: %w", labelOr(j.Label), err))
	}
	res.CPU = c
	if j.Attach != nil {
		if err := j.Attach(c); err != nil {
			return fail(fmt.Errorf("simpool: %s: attach: %w", labelOr(j.Label), err))
		}
	}
	start := time.Now()
	st, err := c.RunContext(ctx)
	res.Wall = time.Since(start)
	res.Status = st
	res.Stats = c.Stats
	if err != nil {
		res.Err = fmt.Errorf("simpool: %s: %w", labelOr(j.Label), err)
	}
	return res
}

// acquireCPU builds the job's CPU, drawing from the recycling arena
// when the job opted in. Recycled CPUs are reset to construction state
// first, so jobs cannot observe each other.
func (p *Pool) acquireCPU(j *Job) (*sim.CPU, error) {
	if j.Recycle {
		if v := p.arena(j).Get(); v != nil {
			c := v.(*sim.CPU)
			if err := c.Reset(j.Model, j.Prog, j.Opts); err != nil {
				return nil, err
			}
			return c, nil
		}
	}
	return sim.New(j.Model, j.Prog, j.Opts)
}

func labelOr(label string) string {
	if label == "" {
		return "job"
	}
	return label
}
