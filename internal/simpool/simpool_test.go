package simpool_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/cycle"
	"repro/internal/driver"
	"repro/internal/isa"
	"repro/internal/ktest"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/simpool"
	"repro/internal/targetgen"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// baseline runs one configuration serially and returns exit code, DOE
// cycles and instruction count — the reference a pooled run of the same
// configuration must reproduce bit-identically.
func baseline(t *testing.T, m *isa.Model, p *sim.Program) (int32, uint64, uint64) {
	t.Helper()
	opts := sim.DefaultOptions()
	opts.Stdout = io.Discard
	opts.MaxInstructions = 500_000_000
	c, err := sim.New(m, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	doe := cycle.NewDOE(m, mem.Paper())
	c.Attach(doe)
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st.ExitCode, doe.Cycles(), st.Instructions
}

// The stress test of the issue: 64 concurrent jobs over two different
// programs (different ISAs), each with its own DOE model and memory
// hierarchy, must produce per-job results identical to the serial
// baseline — the Model and Program are shared, everything else is
// per job.
func TestStress64JobsMatchSerialBaseline(t *testing.T) {
	m := targetgen.MustKahrisma()
	qsort, err := driver.Load(m, "RISC", workloads.Qsort().Sources...)
	if err != nil {
		t.Fatal(err)
	}
	dct, err := driver.Load(m, "VLIW4", workloads.DCT().Sources...)
	if err != nil {
		t.Fatal(err)
	}
	type ref struct {
		prog                 *sim.Program
		exit                 int32
		cycles, instructions uint64
	}
	refs := [2]ref{}
	refs[0].prog = qsort
	refs[1].prog = dct
	for i := range refs {
		refs[i].exit, refs[i].cycles, refs[i].instructions = baseline(t, m, refs[i].prog)
	}

	pool := simpool.New(0)
	defer pool.Close()

	const jobs = 64
	tickets := make([]*simpool.Ticket, jobs)
	does := make([]*cycle.DOE, jobs)
	var mu sync.Mutex
	for i := 0; i < jobs; i++ {
		i := i
		r := refs[i%2]
		opts := sim.DefaultOptions()
		opts.Stdout = io.Discard
		opts.MaxInstructions = 500_000_000
		tickets[i] = pool.Submit(context.Background(), simpool.Job{
			Model: m,
			Prog:  r.prog,
			Opts:  opts,
			Label: fmt.Sprintf("job-%d", i),
			Attach: func(c *sim.CPU) error {
				doe := cycle.NewDOE(m, mem.Paper())
				c.Attach(doe)
				mu.Lock()
				does[i] = doe
				mu.Unlock()
				return nil
			},
		})
	}
	pool.Wait()

	for i, tk := range tickets {
		res := tk.Wait()
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
		r := refs[i%2]
		if res.Status.ExitCode != r.exit {
			t.Errorf("job %d: exit %d, serial baseline %d", i, res.Status.ExitCode, r.exit)
		}
		if res.Status.Instructions != r.instructions {
			t.Errorf("job %d: %d instructions, serial baseline %d", i, res.Status.Instructions, r.instructions)
		}
		if got := does[i].Cycles(); got != r.cycles {
			t.Errorf("job %d: DOE %d cycles, serial baseline %d — concurrent run is not bit-identical",
				i, got, r.cycles)
		}
	}

	st := pool.Stats()
	if st.Done != jobs || st.Failed != 0 || st.Queued != 0 || st.Running != 0 {
		t.Errorf("stats after drain: %+v", st)
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight after drain = %d, want 0", st.InFlight)
	}
	if st.QueueCap <= 0 {
		t.Errorf("QueueCap = %d, want > 0", st.QueueCap)
	}
	want := uint64(jobs/2)*refs[0].instructions + uint64(jobs/2)*refs[1].instructions
	if st.Instructions != want {
		t.Errorf("aggregated instructions = %d, want %d", st.Instructions, want)
	}
	if hr := st.DecodeCacheHitRate(); hr < 0.9 {
		t.Errorf("aggregate decode-cache hit rate = %.3f, implausibly low", hr)
	}
}

// A job whose context is already canceled fails fast with ErrCanceled;
// a running job is stopped by its per-job timeout.
func TestCancellationAndTimeout(t *testing.T) {
	m := ktest.Model(t)
	spin := ktest.BuildProgram(t, "RISC", `
	.isa RISC
	.global main
main:
	j main
`)
	pool := simpool.New(2)
	defer pool.Close()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	res := pool.Submit(canceled, simpool.Job{Model: m, Prog: spin, Opts: discardOpts(), Label: "pre-canceled"}).Wait()
	if !errors.Is(res.Err, sim.ErrCanceled) {
		t.Errorf("pre-canceled job error %v does not wrap sim.ErrCanceled", res.Err)
	}
	if res.CPU != nil {
		t.Error("pre-canceled job built a CPU")
	}

	res = pool.Submit(context.Background(), simpool.Job{
		Model: m, Prog: spin, Opts: discardOpts(), Label: "timeout",
		Timeout: 30 * time.Millisecond,
	}).Wait()
	if !errors.Is(res.Err, sim.ErrCanceled) || !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Errorf("timed-out job error %v does not wrap ErrCanceled/DeadlineExceeded", res.Err)
	}

	st := pool.Stats()
	if st.Done != 2 || st.Failed != 2 {
		t.Errorf("stats = %+v, want 2 done / 2 failed", st)
	}
}

// Submissions after Close fail fast instead of deadlocking, and Close
// is idempotent.
func TestSubmitAfterClose(t *testing.T) {
	m := ktest.Model(t)
	prog := ktest.BuildProgram(t, "RISC", `
	.isa RISC
	.global main
main:
	li a0, 7
	ret
`)
	pool := simpool.New(1)
	res := pool.Submit(context.Background(), simpool.Job{Model: m, Prog: prog, Opts: discardOpts()}).Wait()
	if res.Err != nil || res.Status.ExitCode != 7 {
		t.Fatalf("run: %+v", res)
	}
	pool.Close()
	pool.Close()
	res = pool.Submit(context.Background(), simpool.Job{Model: m, Prog: prog, Opts: discardOpts()}).Wait()
	if res.Err == nil {
		t.Fatal("submit after Close succeeded")
	}
	if !errors.Is(res.Err, simpool.ErrClosed) {
		t.Errorf("submit-after-Close error %v does not wrap simpool.ErrClosed", res.Err)
	}
	batch := pool.SubmitBatch(context.Background(), []simpool.Job{
		{Model: m, Prog: prog, Opts: discardOpts()},
		{Model: m, Prog: prog, Opts: discardOpts()},
	})
	select {
	case <-batch.Done():
	default:
		t.Error("batch submitted after Close is not already complete")
	}
	if err := batch.Wait(context.Background()); !errors.Is(err, simpool.ErrClosed) {
		t.Errorf("batch Wait after Close: error %v does not wrap simpool.ErrClosed", err)
	}
	for i, r := range batch.Results() {
		if !errors.Is(r.Err, simpool.ErrClosed) {
			t.Errorf("batch job %d after Close: error %v does not wrap simpool.ErrClosed", i, r.Err)
		}
	}
	if st := batch.Stats(); st.Done != 2 || st.Failed != 2 {
		t.Errorf("rejected batch stats = %+v, want 2 done / 2 failed", st)
	}
}

// InFlight tracks accepted-but-unfinished jobs while they are queued
// and running, not only after the drain.
func TestInFlightSnapshot(t *testing.T) {
	m := ktest.Model(t)
	spin := ktest.BuildProgram(t, "RISC", `
	.isa RISC
	.global main
main:
	j main
`)
	pool := simpool.New(1)
	defer pool.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tickets := []*simpool.Ticket{
		pool.Submit(ctx, simpool.Job{Model: m, Prog: spin, Opts: discardOpts(), Label: "running"}),
		pool.Submit(ctx, simpool.Job{Model: m, Prog: spin, Opts: discardOpts(), Label: "queued"}),
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := pool.Stats()
		if st.Running == 1 && st.Queued == 1 {
			if st.InFlight != 2 {
				t.Errorf("InFlight = %d with 1 running + 1 queued, want 2", st.InFlight)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never reached 1 running + 1 queued: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	for _, tk := range tickets {
		tk.Wait()
	}
	if st := pool.Stats(); st.InFlight != 0 {
		t.Errorf("InFlight after cancellation drain = %d, want 0", st.InFlight)
	}
}

func discardOpts() sim.Options {
	opts := sim.DefaultOptions()
	opts.Stdout = io.Discard
	opts.MaxInstructions = 500_000_000
	return opts
}

// Every job with an event sink gets exactly one terminal done event,
// whichever layer fails: jobs that never reach the simulator (canceled
// while queued) publish it from the pool, completed runs from the CPU.
func TestEventSinkDoneOnEveryPath(t *testing.T) {
	m := ktest.Model(t)
	prog := ktest.BuildProgram(t, "RISC", `
	.global main
main:
	li a0, 7
	ret
`)
	pool := simpool.New(1)
	defer pool.Close()

	// Pre-run failure: canceled while queued, CPU never built.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	failSink := trace.NewStreamer(16)
	opts := discardOpts()
	opts.EventSink = failSink
	res := pool.Submit(canceled, simpool.Job{Model: m, Prog: prog, Opts: opts, Label: "pre-canceled"}).Wait()
	if res.Err == nil {
		t.Fatal("pre-canceled job succeeded")
	}
	if !failSink.Closed() {
		t.Error("sink left open after pre-run failure")
	}
	done := lastDone(t, failSink)
	if done.Error == "" {
		t.Errorf("pre-run failure done event carries no error: %+v", done)
	}

	// Normal run: the CPU publishes the terminal event with the exit
	// code and instruction count.
	okSink := trace.NewStreamer(16)
	opts = discardOpts()
	opts.EventSink = okSink
	res = pool.Submit(context.Background(), simpool.Job{Model: m, Prog: prog, Opts: opts, Label: "ok"}).Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	done = lastDone(t, okSink)
	if done.Error != "" || done.Instructions != res.Status.Instructions {
		t.Errorf("done = %+v, want clean exit after %d instructions", done, res.Status.Instructions)
	}
}

// lastDone drains the stream and returns its terminal done payload.
func lastDone(t *testing.T, s *trace.Streamer) trace.Done {
	t.Helper()
	sub := s.Subscribe(0)
	defer sub.Cancel()
	ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelCtx()
	var done *trace.Done
	for {
		batch, _, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if batch == nil {
			if done == nil {
				t.Fatal("stream closed without a done event")
			}
			return *done
		}
		for _, ev := range batch {
			if ev.Type == trace.EventDone {
				if done != nil {
					t.Fatal("multiple done events on one stream")
				}
				done = ev.Done
			}
		}
	}
}
