package simpool_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/isa"
	"repro/internal/ktest"
	"repro/internal/sim"
	"repro/internal/simpool"
	"repro/internal/targetgen"
	"repro/internal/workloads"
)

// loadQsort builds the qsort workload once per test.
func loadQsort(t *testing.T) (*isa.Model, *sim.Program) {
	t.Helper()
	m := targetgen.MustKahrisma()
	p, err := driver.Load(m, "RISC", workloads.Qsort().Sources...)
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

// A batch run with recycling enabled must reproduce the serial baseline
// bit-identically for every job, even though later jobs run on CPUs
// whose memory pages and decode-cache buckets were recycled from
// earlier ones — and the chunked dispatch must not reorder or drop
// results.
func TestBatchRecycledMatchesSerialBaseline(t *testing.T) {
	m, prog := loadQsort(t)
	exit, cycles, instructions := baseline(t, m, prog)
	_ = cycles

	pool := simpool.New(2)
	defer pool.Close()

	const n = 24
	jobs := make([]simpool.Job, n)
	for i := range jobs {
		jobs[i] = simpool.Job{
			Model:   m,
			Prog:    prog,
			Opts:    discardOpts(),
			Recycle: true,
			Label:   fmt.Sprintf("recycled-%d", i),
		}
	}
	b := pool.SubmitBatch(context.Background(), jobs)
	if err := b.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if b.Len() != n {
		t.Fatalf("batch Len = %d, want %d", b.Len(), n)
	}
	for i, r := range b.Results() {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		// Recycled jobs must not leak their CPU past OnDone.
		if r.CPU != nil {
			t.Errorf("job %d: recycled job published a CPU on its ticket", i)
		}
		if r.Status.ExitCode != exit || r.Status.Instructions != instructions {
			t.Errorf("job %d: exit/instr %d/%d, serial baseline %d/%d — recycled state leaked",
				i, r.Status.ExitCode, r.Status.Instructions, exit, instructions)
		}
		// Result.Stats outlives the recycled CPU.
		if r.Stats.Instructions != instructions {
			t.Errorf("job %d: Result.Stats.Instructions = %d, want %d", i, r.Stats.Instructions, instructions)
		}
	}
	st := b.Stats()
	if st.Done != n || st.Failed != 0 {
		t.Errorf("batch stats = %+v, want %d done / 0 failed", st, n)
	}
	if want := uint64(n) * instructions; st.Instructions != want {
		t.Errorf("batch instructions = %d, want %d", st.Instructions, want)
	}
}

// Err returns the first error in submission order, not completion
// order, and Wait surfaces it.
func TestBatchFirstErrorIsSubmissionOrdered(t *testing.T) {
	m := ktest.Model(t)
	ok := ktest.BuildProgram(t, "RISC", `
	.isa RISC
	.global main
main:
	li a0, 7
	ret
`)
	spin := ktest.BuildProgram(t, "RISC", `
	.isa RISC
	.global main
main:
	j main
`)
	pool := simpool.New(2)
	defer pool.Close()

	jobs := []simpool.Job{
		{Model: m, Prog: ok, Opts: discardOpts(), Label: "ok-0"},
		{Model: m, Prog: spin, Opts: discardOpts(), Label: "spin-1", Timeout: 20 * time.Millisecond},
		{Model: m, Prog: spin, Opts: discardOpts(), Label: "spin-2", Timeout: 20 * time.Millisecond},
	}
	b := pool.SubmitBatch(context.Background(), jobs)
	err := b.Wait(context.Background())
	if !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("batch error %v does not wrap sim.ErrCanceled", err)
	}
	// The first failing job in submission order is spin-1.
	if want := "spin-1"; err == nil || !strings.Contains(err.Error(), want) {
		t.Errorf("first error %v, want the submission-ordered first failure (%s)", err, want)
	}
	if st := b.Stats(); st.Done != 3 || st.Failed != 2 {
		t.Errorf("batch stats = %+v, want 3 done / 2 failed", st)
	}
}

// A batch whose submission context is canceled mid-flight fails the
// remaining jobs with ErrCanceled while completed ones keep their
// results; Wait under a separate live context still returns the batch's
// own first error.
func TestBatchMidFlightCancellation(t *testing.T) {
	m := ktest.Model(t)
	spin := ktest.BuildProgram(t, "RISC", `
	.isa RISC
	.global main
main:
	j main
`)
	pool := simpool.New(1)
	defer pool.Close()

	ctx, cancel := context.WithCancel(context.Background())
	jobs := make([]simpool.Job, 4)
	for i := range jobs {
		jobs[i] = simpool.Job{Model: m, Prog: spin, Opts: discardOpts(), Label: fmt.Sprintf("spin-%d", i)}
	}
	b := pool.SubmitBatch(ctx, jobs)
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := b.Wait(context.Background()); !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("mid-batch cancellation error %v does not wrap sim.ErrCanceled", err)
	}
	for i, r := range b.Results() {
		if !errors.Is(r.Err, sim.ErrCanceled) {
			t.Errorf("job %d after cancellation: error %v does not wrap sim.ErrCanceled", i, r.Err)
		}
	}
	// Wait with an already-canceled waiting context returns that
	// context's error without blocking on anything further.
	waitCtx, waitCancel := context.WithCancel(context.Background())
	waitCancel()
	b2 := pool.SubmitBatch(context.Background(), nil)
	if err := b2.Wait(waitCtx); err != nil {
		// Empty batch completes immediately, so the done branch wins.
		t.Errorf("empty batch Wait = %v, want nil", err)
	}
}

// Recycling across two different programs keeps the arenas separate: a
// CPU recycled from program A is never handed to a job of program B.
// (Observable effect if it were: the reset would still make it correct,
// so this asserts the stronger per-key behaviour via determinism of a
// mixed batch.)
func TestBatchRecycleMixedPrograms(t *testing.T) {
	m := targetgen.MustKahrisma()
	qsort, err := driver.Load(m, "RISC", workloads.Qsort().Sources...)
	if err != nil {
		t.Fatal(err)
	}
	dct, err := driver.Load(m, "VLIW4", workloads.DCT().Sources...)
	if err != nil {
		t.Fatal(err)
	}
	_, _, qInstr := baseline(t, m, qsort)
	_, _, dInstr := baseline(t, m, dct)

	pool := simpool.New(2)
	defer pool.Close()
	const n = 16
	jobs := make([]simpool.Job, n)
	progs := [2]*sim.Program{qsort, dct}
	want := [2]uint64{qInstr, dInstr}
	for i := range jobs {
		jobs[i] = simpool.Job{Model: m, Prog: progs[i%2], Opts: discardOpts(), Recycle: true}
	}
	b := pool.SubmitBatch(context.Background(), jobs)
	for i, r := range b.Results() {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Stats.Instructions != want[i%2] {
			t.Errorf("job %d: %d instructions, want %d — cross-program recycling leaked state",
				i, r.Stats.Instructions, want[i%2])
		}
	}
}
