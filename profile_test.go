package kahrisma_test

import (
	"context"
	"testing"

	kahrisma "repro"
	"repro/internal/prof"
)

// Profiling is passive: a profiled run returns bit-identical cycle
// counts, instructions and output to the same run without profiling —
// the tentpole invariant of the profiler.
func TestProfilingBitIdenticalCycles(t *testing.T) {
	sys := newSys(t)
	exe, err := sys.BuildC("VLIW4", map[string]string{"p.c": facadeProg})
	if err != nil {
		t.Fatal(err)
	}
	opts := []kahrisma.Option{kahrisma.WithModels("ILP", "DOE")}

	plain, err := exe.Run(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	profiled, err := exe.Run(context.Background(), append(opts, kahrisma.WithProfiling())...)
	if err != nil {
		t.Fatal(err)
	}

	if plain.Profile != nil {
		t.Error("unprofiled run carries a profile")
	}
	if profiled.Profile == nil {
		t.Fatal("profiled run carries no profile")
	}
	if profiled.Instructions != plain.Instructions || profiled.Operations != plain.Operations {
		t.Errorf("instruction counts differ: %d/%d vs %d/%d",
			profiled.Instructions, profiled.Operations, plain.Instructions, plain.Operations)
	}
	if profiled.Output != plain.Output || profiled.ExitCode != plain.ExitCode {
		t.Errorf("outputs differ under profiling")
	}
	for _, m := range []string{"ILP", "DOE"} {
		if profiled.Cycles[m] != plain.Cycles[m] {
			t.Errorf("%s cycles %d with profiling, %d without — profiling is not passive",
				m, profiled.Cycles[m], plain.Cycles[m])
		}
	}

	// The profile's own totals agree with the run result; cycles are
	// attributed by the first activated model (ILP here).
	p := profiled.Profile
	if p.Instructions != plain.Instructions {
		t.Errorf("profile instructions %d != run %d", p.Instructions, plain.Instructions)
	}
	if p.CycleModel != "ILP" || p.Cycles != plain.Cycles["ILP"] {
		t.Errorf("profile cycles %s/%d, want ILP/%d", p.CycleModel, p.Cycles, plain.Cycles["ILP"])
	}
	var perPC uint64
	for _, s := range p.PCs {
		perPC += s.Count
	}
	if perPC != p.Instructions {
		t.Errorf("per-PC counts sum to %d, want %d", perPC, p.Instructions)
	}
}

// mergedPoolProfile runs `jobs` profiled submissions of exe on a pool
// with the given worker count and merges the per-job profiles.
func mergedPoolProfile(t *testing.T, exe *kahrisma.Executable, workers, jobs int) *kahrisma.Profile {
	t.Helper()
	pool := kahrisma.NewPool(workers)
	defer pool.Close()
	handles := make([]*kahrisma.Job, jobs)
	for i := range handles {
		handles[i] = pool.Submit(context.Background(), exe,
			kahrisma.WithModels("DOE"), kahrisma.WithProfiling())
	}
	profiles := make([]*kahrisma.Profile, jobs)
	for i, j := range handles {
		res, err := j.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if res.Profile == nil {
			t.Fatal("pooled profiled job returned no profile")
		}
		profiles[i] = res.Profile
	}
	return kahrisma.MergeProfiles(profiles...)
}

// Merged per-PC profiles are deterministic across worker counts: a
// 1-worker pool and an 8-worker pool produce identical aggregates.
func TestPoolProfileDeterminism(t *testing.T) {
	sys := newSys(t)
	exe, err := sys.BuildC("VLIW4", map[string]string{"p.c": facadeProg})
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 8
	serial := mergedPoolProfile(t, exe, 1, jobs)
	wide := mergedPoolProfile(t, exe, 8, jobs)
	if err := prof.Equal(serial, wide); err != nil {
		t.Fatalf("merged profiles differ across worker counts: %v", err)
	}
	if serial.Instructions == 0 || len(serial.PCs) == 0 {
		t.Fatalf("merged profile is empty: %+v", serial)
	}
}

// A bounded decode cache evicts (visible in the profile) without
// changing simulation results.
func TestDecodeCacheCapEvictions(t *testing.T) {
	sys := newSys(t)
	exe, err := sys.BuildC("RISC", map[string]string{"p.c": facadeProg})
	if err != nil {
		t.Fatal(err)
	}
	unbounded, err := exe.Run(context.Background(),
		kahrisma.WithModels("DOE"), kahrisma.WithProfiling())
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := exe.Run(context.Background(),
		kahrisma.WithModels("DOE"), kahrisma.WithProfiling(), kahrisma.WithDecodeCacheCap(4))
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.Profile.DecodeCache.Evictions != 0 {
		t.Errorf("unbounded cache evicted %d entries", unbounded.Profile.DecodeCache.Evictions)
	}
	if bounded.Profile.DecodeCache.Evictions == 0 {
		t.Error("bounded cache (cap 4) never evicted")
	}
	if bounded.Cycles["DOE"] != unbounded.Cycles["DOE"] || bounded.Output != unbounded.Output {
		t.Errorf("bounded decode cache changed results: cycles %d vs %d",
			bounded.Cycles["DOE"], unbounded.Cycles["DOE"])
	}
	if bounded.Profile.DecodeCache.HitRate() >= unbounded.Profile.DecodeCache.HitRate() {
		t.Errorf("cap 4 hit rate %v not below unbounded %v",
			bounded.Profile.DecodeCache.HitRate(), unbounded.Profile.DecodeCache.HitRate())
	}
}

// A functional (model-less) profiled run attributes execution counts
// without cycles.
func TestFunctionalProfile(t *testing.T) {
	sys := newSys(t)
	exe, err := sys.BuildC("RISC", map[string]string{"p.c": facadeProg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exe.Run(context.Background(), kahrisma.WithProfiling())
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p == nil || len(p.PCs) == 0 {
		t.Fatal("functional run produced no profile")
	}
	if p.Cycles != 0 || p.CycleModel != "" {
		t.Errorf("functional profile claims cycles: %d/%q", p.Cycles, p.CycleModel)
	}
	rep := exe.ProfileReport(p, 5)
	if len(rep.Hotspots) == 0 || rep.Hotspots[0].Count == 0 {
		t.Fatalf("functional report has no count-ranked hotspots: %+v", rep.Hotspots)
	}
	// Symbolization reaches the guest's functions.
	seen := map[string]bool{}
	for _, h := range rep.Hotspots {
		seen[h.Func] = true
	}
	if !seen["work"] && !seen["main"] {
		t.Errorf("hotspots not symbolized: %+v", rep.Hotspots)
	}
}
