// Command kbench regenerates the paper's evaluation (Sec. VII): the
// simulator-performance measurement (Table I, extended with the
// superblock-trace row of docs/interp.md), the ILP-vs-measured
// operations/cycle series of all applications (Figure 4), and the
// DOE-vs-RTL accuracy comparison (Table II).
//
// Usage:
//
//	kbench [-table1] [-figure4] [-table2] [-workers N]   (default: all)
//
// The Figure 4 sweep (31 independent simulations) runs through the
// batch simulation pool; -workers bounds its parallelism (0 =
// GOMAXPROCS, 1 = serial). Table I times the simulator itself and
// always runs serially. Per-job results are bit-identical regardless
// of worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/workloads"
)

func main() {
	t1 := flag.Bool("table1", false, "run only Table I")
	f4 := flag.Bool("figure4", false, "run only Figure 4")
	t2 := flag.Bool("table2", false, "run only Table II")
	workers := flag.Int("workers", 0, "simulation pool workers for the Figure 4 sweep (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()
	all := !*t1 && !*f4 && !*t2

	if all || *t1 {
		fmt.Println("== Table I ==")
		res, err := experiments.RunTable1()
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if all || *f4 {
		n := *workers
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		fmt.Printf("== Figure 4 == (%d pool workers)\n", n)
		start := time.Now()
		apps, err := experiments.RunFigure4Workers(workloads.All(), *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderFigure4(apps))
		fmt.Printf("sweep wall time: %s\n\n", time.Since(start).Round(time.Millisecond))
	}
	if all || *t2 {
		fmt.Println("== Table II ==")
		res, err := experiments.RunTable2()
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kbench: %v\n", err)
	os.Exit(1)
}
