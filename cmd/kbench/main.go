// Command kbench regenerates the paper's evaluation (Sec. VII): the
// simulator-performance measurement (Table I), the ILP-vs-measured
// operations/cycle series of all applications (Figure 4), and the
// DOE-vs-RTL accuracy comparison (Table II).
//
// Usage:
//
//	kbench [-table1] [-figure4] [-table2]     (default: all)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/workloads"
)

func main() {
	t1 := flag.Bool("table1", false, "run only Table I")
	f4 := flag.Bool("figure4", false, "run only Figure 4")
	t2 := flag.Bool("table2", false, "run only Table II")
	flag.Parse()
	all := !*t1 && !*f4 && !*t2

	if all || *t1 {
		fmt.Println("== Table I ==")
		res, err := experiments.RunTable1()
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
	if all || *f4 {
		fmt.Println("== Figure 4 ==")
		apps, err := experiments.RunFigure4(workloads.All())
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderFigure4(apps))
	}
	if all || *t2 {
		fmt.Println("== Table II ==")
		res, err := experiments.RunTable2()
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kbench: %v\n", err)
	os.Exit(1)
}
