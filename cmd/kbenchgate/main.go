// Command kbenchgate turns `go test -bench` output into a benchmark
// regression gate for the CI: it extracts the repo's throughput metrics
// (mips, jobs/s, agg-mips — all higher-is-better) from the benchmark
// stream, snapshots them as JSON, and fails when any metric falls more
// than the tolerance below the committed baseline.
//
//	go test -run '^$' -bench ... -count 3 . | kbenchgate -out BENCH_ci.json -baseline BENCH_baseline.json
//	go test -run '^$' -bench ... -count 3 . | kbenchgate -write-baseline BENCH_baseline.json
//
// Repeated runs of one benchmark (-count N) keep the best value per
// metric, which damps scheduler noise on shared CI runners; the default
// 15% tolerance absorbs the rest. Regressions print one line per
// offending metric and exit 1. A missing or empty baseline is seeded
// from the current run instead of failing, so the gate bootstraps
// itself on first use.
//
// -scale-from/-scale-to assert a scaling ratio within the current run
// (peak >= -scale-min times base on -scale-unit), which lets a
// multi-core CI runner prove pool scaling claims:
//
//	... | kbenchgate -scale-from 'BenchmarkPoolScaling/workers=1' \
//	                 -scale-to 'BenchmarkPoolScaling/workers=8' -scale-min 2
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// gateUnits are the benchmark metrics the gate watches. All are
// throughput (higher is better); timing metrics like ns/op invert the
// comparison and are deliberately excluded — mips already covers them.
var gateUnits = map[string]bool{"mips": true, "jobs/s": true, "agg-mips": true}

// Snapshot is the JSON shape of both the baseline and the CI artifact:
// benchmark name (GOMAXPROCS suffix stripped) to metric unit to value.
type Snapshot struct {
	Metrics map[string]map[string]float64 `json:"metrics"`
}

// parseBench folds a `go test -bench` stream into a snapshot, keeping
// the best value per benchmark and metric across repeated runs.
func parseBench(r io.Reader) (Snapshot, error) {
	snap := Snapshot{Metrics: map[string]map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, metrics, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		m := snap.Metrics[name]
		if m == nil {
			m = map[string]float64{}
			snap.Metrics[name] = m
		}
		for unit, v := range metrics {
			if v > m[unit] {
				m[unit] = v
			}
		}
	}
	return snap, sc.Err()
}

// parseBenchLine extracts the gated metrics from one benchmark result
// line: "BenchmarkX/sub-8  N  v1 unit1  v2 unit2 ...".
func parseBenchLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false // not an iteration count: no result line
	}
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		unit := fields[i+1]
		if !gateUnits[unit] {
			continue
		}
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[unit] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return stripProcs(fields[0]), metrics, true
}

// stripProcs removes the trailing -GOMAXPROCS suffix so snapshots
// compare across runners with different core counts.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// compare checks every baseline metric against the current snapshot.
// It returns one line per regression (empty slice: gate passes);
// metrics missing from the current run are regressions too, so a
// silently deleted benchmark cannot pass the gate.
func compare(baseline, current Snapshot, tolerance float64) []string {
	var failures []string
	names := make([]string, 0, len(baseline.Metrics))
	for name := range baseline.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cur := current.Metrics[name]
		units := make([]string, 0, len(baseline.Metrics[name]))
		for unit := range baseline.Metrics[name] {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			base := baseline.Metrics[name][unit]
			got, ok := cur[unit]
			if !ok {
				failures = append(failures,
					fmt.Sprintf("%s: metric %q missing from this run (baseline %.2f)", name, unit, base))
				continue
			}
			if base <= 0 {
				continue
			}
			if got < base*(1-tolerance) {
				failures = append(failures,
					fmt.Sprintf("%s: %s regressed %.1f%% (%.2f -> %.2f, tolerance %.0f%%)",
						name, unit, 100*(1-got/base), base, got, 100*tolerance))
			}
		}
	}
	return failures
}

// loadBaseline reads a baseline snapshot. A missing file or a baseline
// with no metrics (an empty or freshly seeded repo) reports ok=false
// without an error: the caller seeds a baseline from the current run
// instead of gating against nothing — a gate that compares against an
// empty baseline passes vacuously and hides every regression after it.
func loadBaseline(path string) (base Snapshot, ok bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Snapshot{}, false, nil
	}
	if err != nil {
		return Snapshot{}, false, fmt.Errorf("reading baseline: %w", err)
	}
	if err := json.Unmarshal(data, &base); err != nil {
		return Snapshot{}, false, fmt.Errorf("decoding baseline %s: %w", path, err)
	}
	if len(base.Metrics) == 0 {
		return Snapshot{}, false, nil
	}
	return base, true, nil
}

// scaleCheck asserts a throughput scaling ratio within one snapshot:
// metrics[to][unit] >= min * metrics[from][unit]. It gates the current
// run (not the baseline), so a multi-core CI runner can prove e.g. the
// workers=8 pool sustains >= 2x the workers=1 aggregate mips.
func scaleCheck(snap Snapshot, from, to, unit string, min float64) error {
	b, ok := snap.Metrics[from][unit]
	if !ok || b <= 0 {
		return fmt.Errorf("scaling: no %q metric for %s in this run", unit, from)
	}
	p, ok := snap.Metrics[to][unit]
	if !ok {
		return fmt.Errorf("scaling: no %q metric for %s in this run", unit, to)
	}
	if p < min*b {
		return fmt.Errorf("scaling: %s %s is %.2f, only %.2fx of %s (%.2f); need >= %.2fx",
			to, unit, p, p/b, from, b, min)
	}
	fmt.Printf("kbenchgate: scaling ok: %s %s %.2f = %.2fx of %s (need >= %.2fx)\n",
		to, unit, p, p/b, from, min)
	return nil
}

func main() {
	var (
		out       = flag.String("out", "", "write the parsed snapshot JSON here (CI artifact)")
		baseline  = flag.String("baseline", "BENCH_baseline.json", "committed baseline to gate against")
		tolerance = flag.Float64("tolerance", 0.15, "allowed fractional throughput drop before failing")
		writeBase = flag.String("write-baseline", "", "write the snapshot as a new baseline and skip the gate")
		input     = flag.String("input", "-", "benchmark output to read (-: stdin)")
		scaleFrom = flag.String("scale-from", "", "scaling assertion: benchmark name of the base point")
		scaleTo   = flag.String("scale-to", "", "scaling assertion: benchmark name of the peak point")
		scaleUnit = flag.String("scale-unit", "agg-mips", "scaling assertion: metric unit to compare")
		scaleMin  = flag.Float64("scale-min", 2.0, "scaling assertion: required peak/base ratio")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	// Mirror the stream so the benchmark log stays visible in CI.
	snap, err := parseBench(io.TeeReader(in, os.Stderr))
	if err != nil {
		fatal(err)
	}
	if len(snap.Metrics) == 0 {
		fatal(fmt.Errorf("no gated benchmark metrics found in input"))
	}

	if *out != "" {
		if err := writeSnapshot(*out, snap); err != nil {
			fatal(err)
		}
	}

	if *scaleFrom != "" && *scaleTo != "" {
		if err := scaleCheck(snap, *scaleFrom, *scaleTo, *scaleUnit, *scaleMin); err != nil {
			fatal(err)
		}
	}

	if *writeBase != "" {
		if err := writeSnapshot(*writeBase, snap); err != nil {
			fatal(err)
		}
		fmt.Printf("kbenchgate: baseline %s written (%d benchmarks)\n", *writeBase, len(snap.Metrics))
		return
	}

	base, ok, err := loadBaseline(*baseline)
	if err != nil {
		fatal(err)
	}
	if !ok {
		// First run (or an emptied baseline): seed instead of gating
		// against nothing.
		if err := writeSnapshot(*baseline, snap); err != nil {
			fatal(err)
		}
		fmt.Printf("kbenchgate: no prior baseline, seeded %s (%d benchmarks); gate skipped\n",
			*baseline, len(snap.Metrics))
		return
	}

	failures := compare(base, snap, *tolerance)
	if len(failures) > 0 {
		fmt.Fprintln(os.Stderr, "kbenchgate: throughput regressions:")
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Printf("kbenchgate: %d benchmarks within %.0f%% of baseline\n",
		len(base.Metrics), 100**tolerance)
}

func writeSnapshot(path string, snap Snapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kbenchgate: %v\n", err)
	os.Exit(1)
}
