package main

import (
	"os"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkTable1/NoDecodeCache-8         	       2	 600000000 ns/op	         4.10 mips	       244.0 ns/instr
BenchmarkTable1/DecodeCache-8           	       3	 400000000 ns/op	        10.50 mips	        95.2 ns/instr
BenchmarkTable1/DecodeCache-8           	       3	 380000000 ns/op	        11.20 mips	        89.3 ns/instr
BenchmarkPoolScaling/workers=4-8        	       5	 200000000 ns/op	        12.00 jobs/s	        48.00 agg-mips
--- BENCH: BenchmarkPoolScaling
    bench_test.go:387: GOMAXPROCS=8
PASS
ok  	repro	12.345s
`

func TestParseBench(t *testing.T) {
	snap, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Metrics) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(snap.Metrics), snap.Metrics)
	}
	// The GOMAXPROCS suffix is stripped; repeated runs keep the best.
	if got := snap.Metrics["BenchmarkTable1/DecodeCache"]["mips"]; got != 11.20 {
		t.Errorf("DecodeCache mips = %v, want best-of 11.20", got)
	}
	pool := snap.Metrics["BenchmarkPoolScaling/workers=4"]
	if pool["jobs/s"] != 12.00 || pool["agg-mips"] != 48.00 {
		t.Errorf("pool metrics = %v", pool)
	}
	// Non-gated units never enter the snapshot.
	for name, m := range snap.Metrics {
		for unit := range m {
			if !gateUnits[unit] {
				t.Errorf("%s carries non-gated unit %q", name, unit)
			}
		}
	}
}

func TestParseBenchLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"--- BENCH: BenchmarkPoolScaling",
		"BenchmarkBroken-8 not-a-count 1.0 mips",
		"BenchmarkNoGatedMetrics-8 	 10	 100 ns/op	 5.0 opc",
		"",
	} {
		if name, _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q parsed as benchmark %q", line, name)
		}
	}
}

func snapOf(values map[string]map[string]float64) Snapshot {
	return Snapshot{Metrics: values}
}

func TestCompare(t *testing.T) {
	base := snapOf(map[string]map[string]float64{
		"BenchmarkA": {"mips": 10.0},
		"BenchmarkB": {"jobs/s": 100.0, "agg-mips": 50.0},
	})

	// Within tolerance (10% drop against 15%): pass.
	ok := snapOf(map[string]map[string]float64{
		"BenchmarkA": {"mips": 9.0},
		"BenchmarkB": {"jobs/s": 101.0, "agg-mips": 50.0},
	})
	if fails := compare(base, ok, 0.15); len(fails) != 0 {
		t.Errorf("within-tolerance run failed the gate: %v", fails)
	}

	// A 20% drop on one metric: exactly that metric fails.
	bad := snapOf(map[string]map[string]float64{
		"BenchmarkA": {"mips": 8.0},
		"BenchmarkB": {"jobs/s": 101.0, "agg-mips": 50.0},
	})
	fails := compare(base, bad, 0.15)
	if len(fails) != 1 || !strings.Contains(fails[0], "BenchmarkA") || !strings.Contains(fails[0], "mips") {
		t.Errorf("20%% regression produced %v", fails)
	}

	// A benchmark missing from the current run cannot pass silently.
	missing := snapOf(map[string]map[string]float64{
		"BenchmarkA": {"mips": 10.0},
	})
	fails = compare(base, missing, 0.15)
	if len(fails) != 2 {
		t.Errorf("missing benchmark produced %v, want 2 missing-metric failures", fails)
	}

	// Improvements never fail, whatever the magnitude.
	better := snapOf(map[string]map[string]float64{
		"BenchmarkA": {"mips": 40.0},
		"BenchmarkB": {"jobs/s": 500.0, "agg-mips": 300.0},
	})
	if fails := compare(base, better, 0.15); len(fails) != 0 {
		t.Errorf("improved run failed the gate: %v", fails)
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()

	// Missing file: no error, not ok — the caller seeds a baseline.
	if _, ok, err := loadBaseline(dir + "/missing.json"); err != nil || ok {
		t.Errorf("missing baseline: ok=%v err=%v, want ok=false err=nil", ok, err)
	}

	// A baseline with no entries is as useless as a missing one: the
	// gate would pass vacuously forever.
	empty := dir + "/empty.json"
	if err := writeSnapshot(empty, Snapshot{Metrics: map[string]map[string]float64{}}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := loadBaseline(empty); err != nil || ok {
		t.Errorf("empty baseline: ok=%v err=%v, want ok=false err=nil", ok, err)
	}

	// A populated baseline round-trips.
	full := dir + "/full.json"
	want := snapOf(map[string]map[string]float64{"BenchmarkA": {"mips": 10.0}})
	if err := writeSnapshot(full, want); err != nil {
		t.Fatal(err)
	}
	base, ok, err := loadBaseline(full)
	if err != nil || !ok {
		t.Fatalf("full baseline: ok=%v err=%v", ok, err)
	}
	if base.Metrics["BenchmarkA"]["mips"] != 10.0 {
		t.Errorf("round-tripped baseline = %v", base.Metrics)
	}

	// Corruption is still an error, not a silent reseed.
	bad := dir + "/bad.json"
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadBaseline(bad); err == nil {
		t.Error("corrupt baseline produced no error")
	}
}

func TestScaleCheck(t *testing.T) {
	snap := snapOf(map[string]map[string]float64{
		"BenchmarkPoolScaling/workers=1": {"agg-mips": 20.0, "jobs/s": 100.0},
		"BenchmarkPoolScaling/workers=8": {"agg-mips": 45.0, "jobs/s": 150.0},
	})
	from, to := "BenchmarkPoolScaling/workers=1", "BenchmarkPoolScaling/workers=8"

	if err := scaleCheck(snap, from, to, "agg-mips", 2.0); err != nil {
		t.Errorf("2.25x scaling failed a 2x assertion: %v", err)
	}
	if err := scaleCheck(snap, from, to, "agg-mips", 2.5); err == nil {
		t.Error("2.25x scaling passed a 2.5x assertion")
	}
	if err := scaleCheck(snap, from, to, "jobs/s", 2.0); err == nil {
		t.Error("1.5x jobs/s scaling passed a 2x assertion")
	}
	if err := scaleCheck(snap, from, "BenchmarkMissing", "agg-mips", 2.0); err == nil {
		t.Error("missing peak benchmark passed the assertion")
	}
	if err := scaleCheck(snap, "BenchmarkMissing", to, "agg-mips", 2.0); err == nil {
		t.Error("missing base benchmark passed the assertion")
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkTable1/DecodeCache-8":    "BenchmarkTable1/DecodeCache",
		"BenchmarkPoolScaling/workers=4-8": "BenchmarkPoolScaling/workers=4",
		"BenchmarkPlain":                   "BenchmarkPlain",
		"BenchmarkX/sub-case":              "BenchmarkX/sub-case",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
