// Command kapidiff guards the facade's public API surface: it extracts
// every exported declaration of the root kahrisma package into a
// sorted, one-line-per-element textual form and compares it against
// the committed baseline (api/kahrisma.txt). A surface change — a new
// method, a removed function, a changed signature or struct field —
// fails the check until the baseline is regenerated, so public API
// changes are always a deliberate, reviewable diff.
//
// kapidiff is purely syntactic (stdlib go/parser and go/ast; the repo
// depends on no external modules, so golang.org/x/exp/apidiff is out
// of reach). Parameter names are part of the rendered form: renaming
// one is godoc-visible and should be deliberate too.
//
// Usage:
//
//	kapidiff [dir]                   print the surface to stdout
//	kapidiff -check file [dir]       diff the surface against a baseline
//	kapidiff -write file [dir]       (re)write the baseline
//
// Exit status: 0 when clean, 1 when -check found a difference, 2 on
// operational failure.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

func main() {
	check := flag.String("check", "", "compare the surface against this baseline file")
	write := flag.String("write", "", "write the surface to this baseline file")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: kapidiff [-check file | -write file] [dir]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 1 || (*check != "" && *write != "") {
		flag.Usage()
		os.Exit(2)
	}
	dir := "."
	if flag.NArg() == 1 {
		dir = flag.Arg(0)
	}

	lines, err := surface(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kapidiff: %v\n", err)
		os.Exit(2)
	}
	text := strings.Join(lines, "\n") + "\n"

	switch {
	case *write != "":
		if err := os.WriteFile(*write, []byte(text), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "kapidiff: %v\n", err)
			os.Exit(2)
		}
	case *check != "":
		base, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kapidiff: %v\n", err)
			os.Exit(2)
		}
		diffs := diff(splitLines(string(base)), lines)
		if len(diffs) > 0 {
			for _, d := range diffs {
				fmt.Println(d)
			}
			fmt.Fprintf(os.Stderr, "kapidiff: public API surface differs from %s (%d change(s)); regenerate with `make apidiff-baseline` if deliberate\n",
				*check, len(diffs))
			os.Exit(1)
		}
	default:
		fmt.Print(text)
	}
}

func splitLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}

// diff returns the removed (-) and added (+) lines between two sorted
// line sets.
func diff(old, new []string) []string {
	in := func(set []string, s string) bool {
		i := sort.SearchStrings(set, s)
		return i < len(set) && set[i] == s
	}
	var out []string
	for _, l := range old {
		if !in(new, l) {
			out = append(out, "- "+l)
		}
	}
	for _, l := range new {
		if !in(old, l) {
			out = append(out, "+ "+l)
		}
	}
	return out
}

// surface parses the package in dir (tests excluded) and returns its
// exported declarations, one line per API element, sorted.
func surface(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var lines []string
	for name, pkg := range pkgs {
		if name == "main" {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				lines = append(lines, declLines(decl)...)
			}
		}
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("%s: no exported declarations found", dir)
	}
	sort.Strings(lines)
	return lines, nil
}

// declLines renders one top-level declaration's exported API elements.
func declLines(decl ast.Decl) []string {
	var out []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil {
			recv := d.Recv.List[0].Type
			if !exportedRecv(recv) {
				return nil
			}
			out = append(out, "func ("+types.ExprString(recv)+") "+d.Name.Name+sig(d.Type))
		} else {
			out = append(out, "func "+d.Name.Name+sig(d.Type))
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() {
					out = append(out, "type "+s.Name.Name+" "+types.ExprString(exportedType(s.Type)))
				}
			case *ast.ValueSpec:
				kw := "var"
				if d.Tok == token.CONST {
					kw = "const"
				}
				for _, n := range s.Names {
					if !n.IsExported() {
						continue
					}
					line := kw + " " + n.Name
					if s.Type != nil {
						line += " " + types.ExprString(s.Type)
					}
					out = append(out, line)
				}
			}
		}
	}
	return out
}

// sig renders a function type's parameter and result lists ("(a T) R"),
// without the leading "func" keyword.
func sig(ft *ast.FuncType) string {
	return strings.TrimPrefix(types.ExprString(ft), "func")
}

// exportedRecv reports whether a method receiver's base type name is
// exported (methods on unexported types are not API).
func exportedRecv(e ast.Expr) bool {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr: // generic receiver
			e = t.X
		case *ast.Ident:
			return t.IsExported()
		default:
			return false
		}
	}
}

// exportedType filters unexported fields out of struct types (and
// unexported methods out of interfaces) so the rendered form shows the
// API-visible shape only. Other type expressions pass through.
func exportedType(e ast.Expr) ast.Expr {
	switch t := e.(type) {
	case *ast.StructType:
		return &ast.StructType{Fields: exportedFields(t.Fields)}
	case *ast.InterfaceType:
		return &ast.InterfaceType{Methods: exportedFields(t.Methods)}
	}
	return e
}

func exportedFields(fl *ast.FieldList) *ast.FieldList {
	if fl == nil {
		return nil
	}
	out := &ast.FieldList{}
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			// Embedded field/interface: exported iff its type name is.
			if exportedRecv(f.Type) {
				out.List = append(out.List, f)
			}
			continue
		}
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) > 0 {
			out.List = append(out.List, &ast.Field{Names: names, Type: f.Type})
		}
	}
	return out
}
