package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func writePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSurfaceExportedOnly(t *testing.T) {
	dir := writePkg(t, `package p

import "context"

// Exported API.
const Version = "1"

var ErrBoom = newErr()

type Handle struct {
	Name string
	id   int // unexported: not API
}

type hidden struct{ X int }

func New(ctx context.Context, n int) (*Handle, error) { return nil, nil }

func (h *Handle) Close() error { return nil }

// Methods on unexported types are not API.
func (h *hidden) Open() {}

func newErr() error { return nil }
`)
	got, err := surface(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"const Version",
		"func (*Handle) Close() error",
		"func New(ctx context.Context, n int) (*Handle, error)",
		"type Handle struct{Name string}",
		"var ErrBoom",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("surface:\n got %q\nwant %q", got, want)
	}
}

func TestSurfaceIsSorted(t *testing.T) {
	dir := writePkg(t, `package p
func Zeta()  {}
func Alpha() {}
type Mid int
`)
	got, err := surface(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("surface not sorted: %q before %q", got[i-1], got[i])
		}
	}
}

func TestDiff(t *testing.T) {
	old := []string{"func A()", "func B() int"}
	new := []string{"func A()", "func B(n int) int", "func C()"}
	got := diff(old, new)
	want := []string{"- func B() int", "+ func B(n int) int", "+ func C()"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("diff = %q, want %q", got, want)
	}
	if d := diff(old, old); len(d) != 0 {
		t.Errorf("self-diff = %q, want empty", d)
	}
}

// The committed baseline must describe the current facade: a surface
// change without a baseline regeneration fails here (and in the CI
// apidiff job) until it is made deliberate.
func TestBaselineIsCurrent(t *testing.T) {
	root := filepath.Join("..", "..")
	lines, err := surface(root)
	if err != nil {
		t.Fatal(err)
	}
	base, err := os.ReadFile(filepath.Join(root, "api", "kahrisma.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if d := diff(splitLines(string(base)), lines); len(d) > 0 {
		t.Errorf("api/kahrisma.txt is stale; regenerate with `make apidiff-baseline`:\n%s",
			strings.Join(d, "\n"))
	}
}
