// Command kdump inspects KAHRISMA ELF files: headers, sections,
// symbols, the function table, and a mixed-ISA disassembly of .text.
// Words that decode under no operation-table entry render as `.word`
// directives and are additionally reported as structured diagnostics
// (the klint format, check KB001) after the listing — the dump always
// covers the whole section rather than stopping at the first bad word.
//
// Usage:
//
//	kdump [-d] [-s] [-t] file
//
// Exit status: 0 on a clean dump, 1 when the disassembly reported
// error-severity diagnostics (or the file is unreadable), 2 on usage
// errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/kelf"
	"repro/internal/sim"
	"repro/internal/targetgen"
)

func main() {
	disasm := flag.Bool("d", false, "disassemble .text")
	symbols := flag.Bool("s", false, "print symbols")
	functable := flag.Bool("t", false, "print the function table")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "kdump: exactly one file required")
		os.Exit(2)
	}
	model, err := targetgen.Kahrisma()
	if err != nil {
		fatal(err)
	}
	f, err := kelf.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	kind := "relocatable object"
	if f.Type == kelf.TypeExec {
		kind = "executable"
	}
	entryISA := model.ISAByID(f.EntryISA)
	entryName := fmt.Sprintf("id %d", f.EntryISA)
	if entryISA != nil {
		entryName = entryISA.Name
	}
	fmt.Printf("%s: %s, entry %#x, entry ISA %s\n", flag.Arg(0), kind, f.Entry, entryName)
	fmt.Printf("%-12s %-10s %10s %10s\n", "section", "type", "addr", "size")
	for _, s := range f.Sections {
		fmt.Printf("%-12s %-10d %#10x %10d\n", s.Name, s.Type, s.Addr, s.ByteSize())
	}
	if *symbols {
		fmt.Println("symbols:")
		for _, s := range f.SortedSymbols() {
			fmt.Printf("  %#10x %-6s %-8s %s\n", s.Value, bind(s.Bind), s.Section, s.Name)
		}
	}
	if (*functable || *disasm) && f.Type == kelf.TypeExec {
		prog, err := sim.LoadProgram(f)
		if err != nil {
			fatal(err)
		}
		if *functable {
			fmt.Println("function table:")
			for _, fi := range prog.Funcs.Funcs {
				isaName := fmt.Sprintf("id %d", fi.ISA)
				if a := model.ISAByID(int(fi.ISA)); a != nil {
					isaName = a.Name
				}
				fmt.Printf("  %#10x..%#x %-6s %s\n", fi.Start, fi.End, isaName, fi.Name)
			}
		}
		if *disasm {
			text := f.Section(kelf.SecText)
			fallback := model.ISAByID(f.EntryISA)
			for _, line := range asm.Listing(model, prog.Funcs, fallback, text.Data, text.Addr) {
				fmt.Println(line)
			}
			// Undecodable words render as `.word` in the listing above;
			// report each one as a structured diagnostic (the klint
			// format) instead of stopping at the first bad word.
			if r := analysis.ScanText(model, prog); len(r.Diags) > 0 {
				fmt.Println("diagnostics:")
				for _, d := range r.Diags {
					fmt.Printf("  %s\n", d)
				}
				if r.Errors() > 0 {
					os.Exit(1)
				}
			}
		}
	}
}

func bind(b kelf.SymBind) string {
	if b == kelf.BindGlobal {
		return "global"
	}
	return "local"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kdump: %v\n", err)
	os.Exit(1)
}
