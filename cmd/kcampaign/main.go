// Command kcampaign runs a design-space-exploration campaign from the
// command line: it expands a parameter grid — programs x ISAs x memory
// hierarchies x fuel budgets — into deduplicated simulation points,
// runs them through a worker pool in bounded waves, streams aggregate
// progress to stderr, and prints the Pareto-ranked report.
//
// The grid comes from flags, from a JSON spec file (-spec, the same
// schema POST /v1/campaigns accepts), or from a canned campaign
// (-canned figure4 reproduces the paper's VLIW sweep over every
// built-in workload). Positional C (or, with -asm, assembly) files add
// an inline program to the grid.
//
// Usage:
//
//	kcampaign [-isas RISC,VLIW4,auto] [-workloads fft,qsort]
//	          [-mems "paper;limit:1|cache:1K,2,16,3|mem:18"]
//	          [-fuels 0,500000] [-models DOE] [-profile] [-preflight]
//	          [-wave 8]
//	          [-workers N] [-timeout 30s] [-json] [file.c ...]
//	kcampaign -spec campaign.json [file.c ...]
//	kcampaign -canned figure4
//
// Exit status: 0 when every point succeeded, 1 when any point failed
// or the campaign errored, 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	kahrisma "repro"
)

func main() {
	var (
		specFile  = flag.String("spec", "", "JSON campaign spec file (the POST /v1/campaigns schema)")
		canned    = flag.String("canned", "", "canned campaign: figure4 (the paper's VLIW sweep over every workload)")
		name      = flag.String("name", "", "campaign name for reports and progress events")
		isas      = flag.String("isas", "", "comma-separated ISA axis: instance names and/or \"auto\"")
		workloads = flag.String("workloads", "", "comma-separated built-in workloads (cjpeg, djpeg, fft, qsort, aes, dct)")
		mems      = flag.String("mems", "", "semicolon-separated memory axis: \"paper\" and/or mem specs like \"limit:1|cache:2K,4,32,3|mem:18\"")
		fuels     = flag.String("fuels", "", "comma-separated instruction-budget axis (0: default budget)")
		models    = flag.String("models", "", "comma-separated cycle models; the first ranks the report (default DOE)")
		profile   = flag.Bool("profile", false, "profile every point and attach per-pair deltas between Pareto points")
		preflight = flag.Bool("preflight", false, "lint every unique build before simulating; error findings fail the point")
		wave      = flag.Int("wave", 0, "points in flight at once (0: default)")
		workers   = flag.Int("workers", 0, "pool workers (0: GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 0, "per-point wall-clock cap (0: none)")
		asmSrc    = flag.Bool("asm", false, "positional sources are assembly, not MiniC")
		asJSON    = flag.Bool("json", false, "print the full report as JSON instead of the ranked table")
		quiet     = flag.Bool("quiet", false, "suppress the live progress line on stderr")
	)
	flag.Parse()

	spec, err := buildSpec(*specFile, *canned, flag.Args(), *asmSrc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kcampaign: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if *name != "" {
		spec.Name = *name
	}
	if *isas != "" {
		spec.ISAs = splitList(*isas, ",")
	}
	if *workloads != "" {
		spec.Workloads = splitList(*workloads, ",")
	}
	if *mems != "" {
		spec.Memories = splitList(*mems, ";")
	}
	if *models != "" {
		spec.Models = splitList(*models, ",")
	}
	if *fuels != "" {
		for _, f := range splitList(*fuels, ",") {
			n, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kcampaign: -fuels: %v\n", err)
				os.Exit(2)
			}
			spec.Fuels = append(spec.Fuels, n)
		}
	}
	if *profile {
		spec.Profile = true
	}
	if *preflight {
		spec.Preflight = true
	}
	if *wave > 0 {
		spec.Wave = *wave
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "kcampaign: %v\n", err)
		os.Exit(2)
	}

	sys, err := kahrisma.New()
	if err != nil {
		fatal(err)
	}
	pool := kahrisma.NewPool(*workers)
	defer pool.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := []kahrisma.CampaignOption{}
	if *timeout > 0 {
		opts = append(opts, kahrisma.WithCampaignTimeout(*timeout))
	}
	st := kahrisma.NewStreamer(0)
	if !*quiet {
		opts = append(opts, kahrisma.WithCampaignEvents(st))
		go follow(ctx, st)
	}

	c, err := pool.RunCampaign(ctx, sys, spec, opts...)
	if err != nil {
		fatal(err)
	}
	runErr := c.Wait()
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}

	rep := c.Report()
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else if rep != nil {
		fmt.Print(rep.Render())
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "kcampaign: %v\n", runErr)
		os.Exit(1)
	}
}

// buildSpec assembles the starting spec before flag overrides: a JSON
// file, a canned campaign, or an empty spec; positional files add an
// inline program either way.
func buildSpec(specFile, canned string, files []string, asm bool) (kahrisma.CampaignSpec, error) {
	var spec kahrisma.CampaignSpec
	switch {
	case specFile != "" && canned != "":
		return spec, fmt.Errorf("-spec and -canned are mutually exclusive")
	case specFile != "":
		data, err := os.ReadFile(specFile)
		if err != nil {
			return spec, err
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			return spec, fmt.Errorf("%s: %w", specFile, err)
		}
	case canned == "figure4":
		spec = kahrisma.Figure4Campaign()
	case canned != "":
		return spec, fmt.Errorf("unknown canned campaign %q (want figure4)", canned)
	}
	for _, name := range files {
		text, err := os.ReadFile(name)
		if err != nil {
			return spec, err
		}
		if spec.Sources == nil {
			spec.Sources = map[string]string{}
		}
		spec.Sources[name] = string(text)
	}
	if asm {
		spec.Lang = "asm"
	}
	return spec, nil
}

// follow subscribes to the campaign's event stream and keeps one
// overwritten progress line on stderr.
func follow(ctx context.Context, st *kahrisma.Streamer) {
	sub := st.Subscribe(0)
	defer sub.Cancel()
	start := time.Now()
	for {
		batch, _, err := sub.Next(ctx)
		if err != nil || batch == nil {
			return
		}
		for _, ev := range batch {
			if ev.Type != kahrisma.StreamEventCampaignProgress || ev.Campaign == nil {
				continue
			}
			cp := ev.Campaign
			fmt.Fprintf(os.Stderr, "\rkcampaign: %d/%d points done (%d running, %d cached, %d failed) %s ",
				cp.Done, cp.Points, cp.Running, cp.CacheHits, cp.Failed,
				time.Since(start).Round(time.Second))
		}
	}
}

func splitList(s, sep string) []string {
	var out []string
	for _, p := range strings.Split(s, sep) {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kcampaign: %v\n", err)
	os.Exit(1)
}
