// Command kasm is the mixed-ISA assembler: it translates assembly files
// (with `.isa` directives for run-time ISA switching and `{ ... }` VLIW
// bundles) into relocatable ELF objects.
//
// Usage:
//
//	kasm [-o out.o] file.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/targetgen"
)

func main() {
	out := flag.String("o", "", "output object file (default: input with .o)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "kasm: exactly one input file required")
		os.Exit(2)
	}
	path := flag.Arg(0)
	model, err := targetgen.Kahrisma()
	if err != nil {
		fatal(err)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	obj, err := asm.Assemble(model, path, string(src))
	if err != nil {
		fatal(err)
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(path, ".s") + ".o"
	}
	if err := obj.WriteFile(dst); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kasm: %v\n", err)
	os.Exit(1)
}
