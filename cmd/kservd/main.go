// Command kservd serves KAHRISMA simulations over HTTP: POST a build
// request to /v1/jobs, poll /v1/jobs/{id}, fetch /v1/jobs/{id}/result,
// POST a design-space grid to /v1/campaigns and follow its SSE
// progress, scrape /metrics. See docs/server.md for the API reference
// and docs/campaigns.md for campaigns.
//
//	kservd -addr :8080 -workers 8 -queue 64
//
// SIGTERM/SIGINT drain gracefully: admission stops, in-flight jobs run
// to completion within -drain, then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "simulation pool workers (0: GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "admission queue depth (jobs in flight before 429)")
		maxBody   = flag.Int64("max-body", 1<<20, "request body size limit in bytes")
		maxFuel   = flag.Uint64("max-fuel", 500_000_000, "per-job instruction cap (also the default budget)")
		maxTime   = flag.Duration("max-timeout", 30*time.Second, "per-job wall-clock cap (also the default)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-drain deadline on SIGTERM")
		exeCache  = flag.Int("exe-cache", 128, "artifact cache capacity (linked executables)")
		ring      = flag.Int("stream-ring", 4096, "per-job live-event ring capacity (SSE)")
		heartbeat = flag.Duration("heartbeat", 15*time.Second, "SSE keep-alive interval on idle event streams")
		points    = flag.Int("campaign-points", 1024, "per-campaign grid-size cap (POST /v1/campaigns)")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON")
		spans     = flag.Bool("trace-spans", false, "log pipeline spans per job (elaborate/build/simulate, W3C trace ids)")
		noSB      = flag.Bool("no-superblocks", false, "run jobs through the stepwise interpreter (no superblock decode traces)")
		otlp      = flag.String("otlp-endpoint", "", "OTLP/HTTP collector base URL for span+metric export, e.g. http://localhost:4318 (docs/observability.md)")
		otlpEvery = flag.Duration("otlp-interval", 10*time.Second, "OTLP export flush interval")
		profEvery = flag.Uint64("profile-sample", 0, "default profiler sampling stride for profiled jobs (0/1: exact)")
	)
	flag.Parse()

	var h slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		h = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(h)

	s, err := server.New(server.Config{
		Workers:             *workers,
		QueueDepth:          *queue,
		MaxRequestBytes:     *maxBody,
		MaxFuel:             *maxFuel,
		MaxTimeout:          *maxTime,
		DrainTimeout:        *drain,
		ExeCacheSize:        *exeCache,
		StreamRingSize:      *ring,
		HeartbeatInterval:   *heartbeat,
		MaxCampaignPoints:   *points,
		Logger:              log,
		TraceSpans:          *spans,
		DisableSuperblocks:  *noSB,
		OTLPEndpoint:        *otlp,
		OTLPInterval:        *otlpEvery,
		ProfileSampleStride: *profEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kservd:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := s.Serve(ctx, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "kservd:", err)
		os.Exit(1)
	}
}
