// Command ksim is the cycle-approximate, mixed-ISA instruction set
// simulator: it loads a KAHRISMA ELF executable, emulates all ISAs with
// run-time SWITCHTARGET switching and native C library emulation, and
// optionally approximates cycle counts with the ILP, AIE and DOE models
// (Sec. V/VI of the paper). The cycle-accurate RTL reference pipeline
// can be attached for accuracy comparisons.
//
// Usage:
//
//	ksim [-models ILP,AIE,DOE,RTL] [-trace file] [-stats] [-profile]
//	     [-flat-mem N] [-no-cache] [-no-predict] [-max N] a.out
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/cycle"
	"repro/internal/kelf"
	"repro/internal/mem"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/targetgen"
	"repro/internal/trace"
)

func main() {
	modelsFlag := flag.String("models", "", "comma-separated cycle models: ILP,AIE,DOE,RTL")
	traceFile := flag.String("trace", "", "write a trace file (cycle, opcode, registers, immediates)")
	stats := flag.Bool("stats", false, "print simulator statistics (decode cache, prediction)")
	profile := flag.Bool("profile", false, "print per-function theoretical ILP (ISA selection indicator)")
	flatMem := flag.Uint64("flat-mem", 0, "use a flat memory with this delay instead of the L1/L2/DRAM hierarchy")
	memSpec := flag.String("mem", "", "custom memory hierarchy spec, e.g. limit:1|cache:2K,4,32,3|cache:256K,4,32,6|mem:18")
	bpPenalty := flag.Uint64("bp", 0, "attach the branch misprediction model to DOE with this penalty (0: perfect prediction, the paper's setup)")
	noCache := flag.Bool("no-cache", false, "disable the decode cache")
	noPred := flag.Bool("no-predict", false, "disable instruction prediction")
	maxInstr := flag.Uint64("max", 2_000_000_000, "instruction limit")
	history := flag.Int("history", 64, "instruction pointer history depth for error reports")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "ksim: exactly one executable required")
		os.Exit(2)
	}

	model, err := targetgen.Kahrisma()
	if err != nil {
		fatal(err)
	}
	exe, err := kelf.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := sim.LoadProgram(exe)
	if err != nil {
		fatal(err)
	}
	opts := sim.Options{
		DecodeCache:     !*noCache,
		Prediction:      !*noCache && !*noPred,
		MaxInstructions: *maxInstr,
		Stdout:          os.Stdout,
		Stdin:           os.Stdin,
		HistorySize:     *history,
	}
	cpu, err := sim.New(model, prog, opts)
	if err != nil {
		fatal(err)
	}

	hierarchy := func() *mem.Hierarchy {
		if *memSpec != "" {
			h, err := mem.ParseSpec(*memSpec)
			if err != nil {
				fatal(err)
			}
			return h
		}
		if *flatMem > 0 {
			return mem.Flat(*flatMem)
		}
		return mem.Paper()
	}
	var models []cycle.Model
	var pipe *rtl.Pipeline
	var hier *mem.Hierarchy
	if *modelsFlag != "" {
		for _, name := range strings.Split(*modelsFlag, ",") {
			switch strings.ToUpper(strings.TrimSpace(name)) {
			case "ILP":
				models = append(models, cycle.NewILP(model))
			case "AIE":
				if hier == nil {
					hier = hierarchy()
				}
				models = append(models, cycle.NewAIE(hier))
			case "DOE":
				if hier == nil {
					hier = hierarchy()
				}
				doe := cycle.NewDOE(model, hier)
				if *bpPenalty > 0 {
					doe.Pred = cycle.NewBranchPredictor(512)
					doe.MispredictPenalty = *bpPenalty
				}
				models = append(models, doe)
			case "RTL":
				cfg := rtl.DefaultConfig()
				cfg.Hierarchy = hierarchy()
				pipe = rtl.New(model, cfg)
			default:
				fatal(fmt.Errorf("unknown model %q", name))
			}
		}
	}
	for _, m := range models {
		cpu.Attach(m)
	}
	if pipe != nil {
		cpu.Attach(pipe)
	}
	var pf *cycle.PerFunctionILP
	if *profile {
		pf = cycle.NewPerFunctionILP(model, prog)
		cpu.Attach(pf)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cpu.SetTrace(trace.NewWriter(f))
	}

	// Interrupts (Ctrl-C) cancel the run via the context plumbed into
	// the interpretation loop; partial statistics are still reported.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	st, err := cpu.RunContext(ctx)
	interrupted := errors.Is(err, sim.ErrCanceled)
	if err != nil && !interrupted {
		fatal(err)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "ksim: interrupted: %v\n", err)
	}

	w := os.Stderr
	fmt.Fprintf(w, "ksim: exit %d after %d instructions (%d operations)\n",
		st.ExitCode, st.Instructions, cpu.Stats.Operations)
	for _, m := range models {
		fmt.Fprintf(w, "ksim: %-4s %12d cycles  (%.2f ops/cycle)\n", m.Name(), m.Cycles(), cycle.OPC(m))
		if doe, ok := m.(*cycle.DOE); ok && doe.Pred != nil {
			fmt.Fprintf(w, "ksim: branch predictor: %.2f%% mispredicted (%d of %d)\n",
				100*doe.Pred.MissRate(), doe.Pred.Mispredict, doe.Pred.Lookups)
		}
	}
	if pipe != nil {
		pipe.Drain()
		fmt.Fprintf(w, "ksim: RTL  %12d cycles  (%s)\n", pipe.Cycles(), pipe.Describe())
	}
	if hier != nil && hier.L1 != nil {
		fmt.Fprintf(w, "ksim: L1 miss rate %.2f%%", 100*hier.L1.MissRate())
		if hier.L2 != nil {
			fmt.Fprintf(w, ", L2 miss rate %.2f%%", 100*hier.L2.MissRate())
		}
		fmt.Fprintln(w)
	}
	if *stats {
		s := cpu.Stats
		fmt.Fprintf(w, "ksim: detected %d, cache lookups %d (hits %d), prediction hits %d, simcalls %d, ISA switches %d\n",
			s.Detected, s.CacheLookups, s.CacheHits, s.PredHits, s.Simcalls, s.ISASwitches)
	}
	if pf != nil {
		fmt.Fprintf(w, "ksim: per-function theoretical ILP (ISA selection indicator):\n")
		for _, f := range pf.Results() {
			fmt.Fprintf(w, "  %-24s ILP %5.2f  (%8d ops)  -> %s\n",
				f.Name, f.ILP, f.Operations, cycle.Recommend(model, f.ILP, 0.7).Name)
		}
	}
	if interrupted {
		os.Exit(130) // conventional 128+SIGINT, not the partial program exit code
	}
	os.Exit(int(st.ExitCode) & 0xFF)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ksim: %v\n", err)
	os.Exit(1)
}
