// Command klint statically verifies KAHRISMA artifacts: ADL
// architecture models and mixed-ISA guest programs (sources or linked
// executables). It shares its checks with the targetgen elaboration
// gate and the kservd /v1/analyze endpoint; docs/analysis.md is the
// check catalogue.
//
// Usage:
//
//	klint [flags] [file ...]
//
// Each argument is analyzed as one program: .c sources are compiled,
// .s sources assembled, anything else is decoded as a linked ELF
// executable. With no arguments, only the architecture model is
// checked.
//
// Flags:
//
//	-isa NAME    target/entry ISA for building sources (default RISC)
//	-adl FILE    lint a custom ADL description and build against it
//	-workloads   also lint every built-in benchmark workload
//	-bounds      report static DOE cycle lower bounds per basic block
//	-checks LIST restrict program checks to a comma-separated ID list
//	-min LEVEL   minimum severity to print: info, warning, error
//	-json        machine-readable output
//	-sarif FILE  additionally write a SARIF 2.1.0 log ("-": stdout)
//
// Exit status: 0 when no error-severity diagnostics were found, 1 when
// at least one error was reported, 2 on operational failure (unreadable
// input, build failure, bad flags).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/adl"
	"repro/internal/analysis"
	"repro/internal/driver"
	"repro/internal/isa"
	"repro/internal/kelf"
	"repro/internal/sim"
	"repro/internal/targetgen"
	"repro/internal/workloads"
)

type programReport struct {
	Name  string                `json:"name"`
	Diags []analysis.Diagnostic `json:"diagnostics"`
}

type output struct {
	Model    []analysis.Diagnostic `json:"model"`
	Programs []programReport       `json:"programs,omitempty"`
	Errors   int                   `json:"errors"`
	Warnings int                   `json:"warnings"`
}

func main() {
	isaName := flag.String("isa", "RISC", "target/entry ISA for building sources")
	adlPath := flag.String("adl", "", "custom ADL description to lint and build against")
	doWorkloads := flag.Bool("workloads", false, "lint every built-in benchmark workload")
	bounds := flag.Bool("bounds", false, "report static DOE cycle lower bounds per basic block")
	minLevel := flag.String("min", "info", "minimum severity to print: info, warning, error")
	asJSON := flag.Bool("json", false, "machine-readable output")
	checksFlag := flag.String("checks", "", "comma-separated check IDs to run on programs (empty: all; see docs/analysis.md)")
	sarifPath := flag.String("sarif", "", "write a SARIF 2.1.0 log to this file (\"-\": stdout)")
	flag.Parse()

	min, ok := analysis.ParseSeverity(*minLevel)
	if !ok {
		fmt.Fprintf(os.Stderr, "klint: unknown severity %q\n", *minLevel)
		os.Exit(2)
	}
	var checks []string
	if *checksFlag != "" {
		for _, id := range strings.Split(*checksFlag, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if id == "" {
				continue
			}
			if !analysis.KnownCheck(id) {
				fmt.Fprintf(os.Stderr, "klint: unknown check %q (see docs/analysis.md)\n", id)
				os.Exit(2)
			}
			checks = append(checks, id)
		}
	}

	model, modelReport, err := loadModel(*adlPath)
	if err != nil {
		fatal(err)
	}

	out := output{Model: modelReport.Filter(min).Diags}
	total := &analysis.Report{}
	total.Merge(modelReport)

	// A model with error-severity findings cannot meaningfully build or
	// decode programs: report it and stop.
	if modelReport.Errors() > 0 && (flag.NArg() > 0 || *doWorkloads) {
		fmt.Fprintln(os.Stderr, "klint: model has errors, skipping program analysis")
	} else {
		opts := analysis.Options{DOEBounds: *bounds, Checks: checks}
		for _, arg := range flag.Args() {
			p, err := loadProgram(model, *isaName, arg)
			if err != nil {
				fatal(err)
			}
			r := analysis.AnalyzeExecutable(model, p, opts)
			out.Programs = append(out.Programs, programReport{Name: arg, Diags: r.Filter(min).Diags})
			total.Merge(&r.Report)
		}
		if *doWorkloads {
			for _, w := range workloads.All() {
				p, err := driver.Load(model, *isaName, w.Sources...)
				if err != nil {
					fatal(fmt.Errorf("workload %s: %v", w.Name, err))
				}
				r := analysis.AnalyzeExecutable(model, p, opts)
				name := "workload:" + w.Name
				out.Programs = append(out.Programs, programReport{Name: name, Diags: r.Filter(min).Diags})
				total.Merge(&r.Report)
			}
		}
	}

	out.Errors = total.Errors()
	out.Warnings = total.Warnings()
	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, &out); err != nil {
			fatal(err)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range out.Model {
			fmt.Printf("model: %s\n", d)
		}
		for _, pr := range out.Programs {
			for _, d := range pr.Diags {
				fmt.Printf("%s: %s\n", pr.Name, d)
			}
		}
		fmt.Printf("klint: %d error(s), %d warning(s)\n", out.Errors, out.Warnings)
	}
	if out.Errors > 0 {
		os.Exit(1)
	}
}

// loadModel elaborates the built-in or a custom ADL description. Custom
// descriptions go through the lenient elaboration path so klint can
// report detection and bounds findings that Elaborate would refuse.
func loadModel(path string) (*isa.Model, *analysis.Report, error) {
	if path == "" {
		m, err := targetgen.Kahrisma()
		if err != nil {
			return nil, nil, err
		}
		r := analysis.CheckModel(m)
		r.Sort()
		return m, r, nil
	}
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	doc, err := adl.Parse(string(text))
	if err != nil {
		return nil, nil, err
	}
	m, r, err := targetgen.ElaborateLenient(doc)
	if err != nil {
		return nil, nil, err
	}
	return m, r, nil
}

// loadProgram builds one program from a source file (by extension) or
// decodes it as a linked executable.
func loadProgram(m *isa.Model, isaName, path string) (*sim.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	name := filepath.Base(path)
	switch strings.ToLower(filepath.Ext(path)) {
	case ".c":
		return driver.Load(m, isaName, driver.CSource(name, string(data)))
	case ".s", ".asm":
		return driver.Load(m, isaName, driver.AsmSource(name, string(data)))
	default:
		f, err := kelf.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		return sim.LoadProgram(f)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "klint: %v\n", err)
	os.Exit(2)
}
