package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/analysis"
)

// SARIF 2.1.0 export: one run, the analysis check catalogue as the
// rule table, one result per diagnostic. Guest diagnostics carry no
// source line — the analyzer works on linked binaries — so each result
// locates its artifact (the analyzed file, or "model") and records the
// guest address and function as properties plus a logical location.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID                   string       `json:"id"`
	ShortDescription     sarifText    `json:"shortDescription"`
	DefaultConfiguration sarifDefault `json:"defaultConfiguration"`
}

type sarifDefault struct {
	Level string `json:"level"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID     string          `json:"ruleId"`
	Level      string          `json:"level"`
	Message    sarifText       `json:"message"`
	Locations  []sarifLocation `json:"locations,omitempty"`
	Properties map[string]any  `json:"properties,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation *sarifPhysical `json:"physicalLocation,omitempty"`
	LogicalLocations []sarifLogical `json:"logicalLocations,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifLogical struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

func sarifLevel(sev analysis.Severity) string {
	switch sev {
	case analysis.Error:
		return "error"
	case analysis.Warning:
		return "warning"
	default:
		return "note"
	}
}

func sarifResultFor(artifact string, d analysis.Diagnostic) sarifResult {
	res := sarifResult{
		RuleID:  d.Check,
		Level:   sarifLevel(d.Severity),
		Message: sarifText{Text: d.Msg},
	}
	loc := sarifLocation{
		PhysicalLocation: &sarifPhysical{ArtifactLocation: sarifArtifact{URI: artifact}},
	}
	if d.Func != "" {
		loc.LogicalLocations = append(loc.LogicalLocations, sarifLogical{Name: d.Func, Kind: "function"})
	}
	res.Locations = []sarifLocation{loc}
	props := map[string]any{}
	if d.HasAddr {
		props["guestAddress"] = fmt.Sprintf("%#x", d.Addr)
	}
	if d.ISA != "" {
		props["isa"] = d.ISA
	}
	if len(props) > 0 {
		res.Properties = props
	}
	return res
}

// buildSARIF renders the collected output as one SARIF run.
func buildSARIF(out *output) *sarifLog {
	var rules []sarifRule
	for _, c := range analysis.Checks() {
		rules = append(rules, sarifRule{
			ID:                   c.ID,
			ShortDescription:     sarifText{Text: c.Summary},
			DefaultConfiguration: sarifDefault{Level: sarifLevel(c.Severity)},
		})
	}
	results := []sarifResult{}
	for _, d := range out.Model {
		results = append(results, sarifResultFor("model", d))
	}
	for _, pr := range out.Programs {
		for _, d := range pr.Diags {
			results = append(results, sarifResultFor(pr.Name, d))
		}
	}
	return &sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "klint",
				InformationURI: "docs/analysis.md",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
}

// writeSARIF writes the SARIF log to path ("-" for stdout).
func writeSARIF(path string, out *output) error {
	log := buildSARIF(out)
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
