// Command kprof builds, runs and profiles a guest program, then renders
// the microarchitectural profile: top-N per-PC hotspots symbolized from
// the executable's debug sections, decode-cache and
// instruction-prediction rates, per-ISA and per-VLIW-slot attribution,
// run-time ISA switches, and (with -disasm) a kdump-style annotated
// disassembly of the hot functions. -pprof exports the gzipped
// profile.proto rendering of the same data for `go tool pprof`.
//
// Usage:
//
//	kprof [-isa RISC] [-models DOE] [-top 20] [-disasm] [-json]
//	      [-pprof out.pb.gz] [-asm] [-fuel N] [-mem SPEC]
//	      [-check-static] file.c...
//	kprof -diff [-top 20] [-json] a.json b.json
//
// -diff takes two saved -json reports instead of sources and renders
// their deltas (totals, per-ISA attribution, top-N per-PC cycle
// movement), B relative to A.
//
// -check-static cross-checks the measured DOE cycles against the
// analyzer's static per-block lower bounds (check KB005): the run's
// total cycles must cover the bound of every executed block and the
// executed instruction count. It requires DOE as the first (primary)
// cycle model.
//
// Exit status: 0 on success, 1 on build/run errors, an empty profile or
// a violated static bound, 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	kahrisma "repro"
)

func main() {
	var (
		isaName = flag.String("isa", "RISC", "target/entry processor instance")
		models  = flag.String("models", "DOE", "comma-separated cycle models (ILP, AIE, DOE, RTL); empty profiles execution counts only")
		topN    = flag.Int("top", 20, "hotspot rows to print (0: all)")
		asJSON  = flag.Bool("json", false, "print the full symbolized report as JSON")
		pprofF  = flag.String("pprof", "", "write the gzipped pprof profile.proto to this file")
		disasm  = flag.Bool("disasm", false, "print annotated disassembly of the functions holding the top hotspots")
		asmSrc  = flag.Bool("asm", false, "sources are assembly, not MiniC")
		fuel    = flag.Uint64("fuel", 0, "instruction budget (0: default)")
		memSpec = flag.String("mem", "", "memory hierarchy spec, e.g. \"limit:1|cache:2K,4,32,3|mem:18\" (empty: the paper's)")
		diff    = flag.Bool("diff", false, "compare two saved -json reports (a.json b.json) instead of running a program")
		chkStat = flag.Bool("check-static", false, "cross-check measured DOE cycles against the static per-block lower bounds (KB005); requires DOE as the first model")
		sample  = flag.Uint64("sample", 0, "profile every n-th instruction per PC instead of all of them (0/1: exact; see docs/observability.md)")
	)
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "kprof: -diff takes exactly two saved report files")
			flag.Usage()
			os.Exit(2)
		}
		runDiff(flag.Arg(0), flag.Arg(1), *topN, *asJSON)
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "kprof: at least one source file required")
		flag.Usage()
		os.Exit(2)
	}

	files := map[string]string{}
	for _, name := range flag.Args() {
		text, err := os.ReadFile(name)
		if err != nil {
			fatal(err)
		}
		files[name] = string(text)
	}

	sys, err := kahrisma.New()
	if err != nil {
		fatal(err)
	}
	var exe *kahrisma.Executable
	if *asmSrc {
		exe, err = sys.BuildAsm(*isaName, files)
	} else {
		exe, err = sys.BuildC(*isaName, files)
	}
	if err != nil {
		fatal(err)
	}

	opts := []kahrisma.Option{kahrisma.WithProfiling()}
	if *sample > 1 {
		opts = []kahrisma.Option{kahrisma.WithProfileSampling(*sample)}
	}
	var modelList []string
	if *models != "" {
		modelList = strings.Split(*models, ",")
		opts = append(opts, kahrisma.WithModels(modelList...))
	}
	if *fuel > 0 {
		opts = append(opts, kahrisma.WithFuel(*fuel))
	}
	if *memSpec != "" {
		opts = append(opts, kahrisma.WithMemorySpec(*memSpec))
	}
	res, err := exe.Run(context.Background(), opts...)
	if err != nil {
		fatal(err)
	}
	p := res.Profile
	if p == nil || len(p.PCs) == 0 {
		fmt.Fprintln(os.Stderr, "kprof: run produced an empty profile")
		os.Exit(1)
	}

	if *pprofF != "" {
		f, err := os.Create(*pprofF)
		if err != nil {
			fatal(err)
		}
		if err := exe.WriteProfilePprof(f, p); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kprof: wrote %s (render with: go tool pprof %s)\n", *pprofF, *pprofF)
	}

	if *chkStat {
		sb, err := exe.CheckStaticBounds(p)
		if err != nil {
			fatal(err)
		}
		printStaticBounds(sb)
		if !sb.OK() {
			os.Exit(1)
		}
	}

	rep := exe.ProfileReport(p, *topN)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}

	printReport(rep)
	if *disasm {
		printAnnotated(exe, p, rep)
	}
}

// printStaticBounds renders the static-bounds cross-check: one row per
// function with executed blocks, then any violated invariants.
func printStaticBounds(sb *kahrisma.StaticBoundsReport) {
	fmt.Printf("static bounds: %d measured DOE cycles over %d instructions; %d of %d blocks executed\n",
		sb.TotalCycles, sb.TotalInstructions, sb.ExecutedBlocks, sb.CheckedBlocks)
	fmt.Printf("  %-16s %8s %12s %12s\n", "FUNC", "BLOCKS", "MAX BOUND", "SUM BOUNDS")
	for _, f := range sb.Funcs {
		fmt.Printf("  %-16s %8d %12d %12d\n", f.Func, f.ExecutedBlocks, f.MaxBound, f.SumBounds)
	}
	if sb.OK() {
		fmt.Println("static bounds: all invariants hold")
		return
	}
	for _, v := range sb.Violations {
		fmt.Fprintf(os.Stderr, "kprof: static bound violated: %s\n", v.Msg)
	}
}

func printReport(rep *kahrisma.ProfileReport) {
	fmt.Printf("instructions %d, operations %d", rep.Instructions, rep.Operations)
	if rep.Cycles > 0 {
		fmt.Printf(", %s cycles %d", rep.CycleModel, rep.Cycles)
	}
	if rep.SampleStride > 1 {
		fmt.Printf("  [sampled 1/%d: per-PC counts are scaled estimates]", rep.SampleStride)
	}
	fmt.Println()
	fmt.Printf("decode cache: %5.1f%% hit  (lookups %d, misses %d, evictions %d)\n",
		100*rep.DecodeCache.HitRate, rep.DecodeCache.Lookups, rep.DecodeCache.Misses, rep.DecodeCache.Evictions)
	fmt.Printf("prediction:   %5.1f%% hit  (hits %d, misses %d)\n",
		100*rep.Prediction.HitRate, rep.Prediction.Hits, rep.Prediction.Misses)

	if len(rep.ISAs) > 1 || len(rep.Switches) > 0 {
		fmt.Println("per-ISA attribution:")
		for _, s := range rep.ISAs {
			fmt.Printf("  %-8s %12d instr %12d ops %12d cycles\n", s.ISA, s.Instructions, s.Ops, s.Cycles)
		}
		for _, sw := range rep.Switches {
			fmt.Printf("  switch %s -> %s: %d\n", sw.From, sw.To, sw.Count)
		}
	}
	if len(rep.Slots) > 1 {
		fmt.Println("per-slot issue:")
		for _, s := range rep.Slots {
			fmt.Printf("  slot %2d %12d ops (%d mem)\n", s.Slot, s.Ops, s.MemOps)
		}
	}

	fmt.Printf("hotspots (%d of %d PCs):\n", len(rep.Hotspots), rep.TotalPCs)
	fmt.Printf("  %10s %6s %10s %10s  %-10s %-16s %s\n",
		"CYCLES", "PCT", "STALLS", "COUNT", "PC", "FUNC", "FILE:LINE")
	for _, h := range rep.Hotspots {
		loc := ""
		if h.File != "" {
			loc = h.File + ":" + strconv.Itoa(h.Line)
		}
		fmt.Printf("  %10d %5.1f%% %10d %10d  %#-10x %-16s %s\n",
			h.Cycles, h.CyclePct, h.Stalls, h.Count, h.PC, h.Func, loc)
	}
}

// printAnnotated renders the executable's listing for every function
// holding a top hotspot, prefixing each instruction with its execution
// count and attributed cycles (from the full profile, so cold lines of
// a hot function still show their counts).
func printAnnotated(exe *kahrisma.Executable, p *kahrisma.Profile, rep *kahrisma.ProfileReport) {
	hot := map[string]bool{}
	for _, h := range rep.Hotspots {
		if h.Func != "" {
			hot[h.Func] = true
		}
	}
	if len(hot) == 0 {
		fmt.Println("annotated disassembly: no hotspot maps to a function")
		return
	}
	names := make([]string, 0, len(hot))
	for n := range hot {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("annotated disassembly (%s):\n", strings.Join(names, ", "))

	// Listing lines are "ADDR <name>:" function labels and "ADDR:  ..."
	// instructions; walk them tracking the current function.
	cur := ""
	for _, line := range exe.Disassemble() {
		if name, ok := strings.CutSuffix(line, ">:"); ok {
			if i := strings.LastIndex(name, "<"); i >= 0 {
				cur = name[i+1:]
			}
			if hot[cur] {
				fmt.Printf("  %21s %s\n", "", line)
			}
			continue
		}
		if !hot[cur] {
			continue
		}
		addr, _, found := strings.Cut(line, ":")
		if !found {
			continue
		}
		pc, err := strconv.ParseUint(strings.TrimSpace(addr), 16, 32)
		if err != nil {
			continue
		}
		if s, ok := p.PCs[uint32(pc)]; ok {
			fmt.Printf("  %10d %10d %s\n", s.Count, s.Cycles, line)
		} else {
			fmt.Printf("  %10s %10s %s\n", ".", ".", line)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kprof: %v\n", err)
	os.Exit(1)
}
