package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	kahrisma "repro"
)

func writeReport(t *testing.T, dir, name string, rep *kahrisma.ProfileReport) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffModeRendering(t *testing.T) {
	dir := t.TempDir()
	a := &kahrisma.ProfileReport{CycleModel: "DOE", Instructions: 100, Operations: 120, Cycles: 5000}
	b := &kahrisma.ProfileReport{CycleModel: "DOE", Instructions: 100, Operations: 150, Cycles: 4200}
	pa := writeReport(t, dir, "a.json", a)
	pb := writeReport(t, dir, "b.json", b)

	d := kahrisma.DiffProfileReports(loadReport(pa), loadReport(pb), 16)
	if d.CyclesDelta != -800 || d.OperationsDelta != 30 {
		t.Fatalf("deltas: %+v", d)
	}

	var buf bytes.Buffer
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	printDiff(pa, pb, d)
	w.Close()
	os.Stdout = old
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"profile diff:", "(DOE)", "(-800)", "(+30)", "per-PC cycle movement"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestLoadReportErrorsAreUsable(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var rep kahrisma.ProfileReport
	if err := json.Unmarshal([]byte("not json"), &rep); err == nil {
		t.Fatal("expected decode error")
	}
}
