package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	kahrisma "repro"
)

// runDiff implements `kprof -diff a.json b.json`: load two saved
// profile reports (the -json output of earlier kprof runs or of the
// server's /profile endpoint) and render their per-total, per-ISA and
// per-PC deltas, B relative to A. This is the same comparison
// primitive campaign reports attach between Pareto points.
func runDiff(pathA, pathB string, topN int, asJSON bool) {
	a := loadReport(pathA)
	b := loadReport(pathB)
	d := kahrisma.DiffProfileReports(a, b, topN)
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			fatal(err)
		}
		return
	}
	printDiff(pathA, pathB, d)
}

func loadReport(path string) *kahrisma.ProfileReport {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var rep kahrisma.ProfileReport
	if err := json.Unmarshal(data, &rep); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return &rep
}

func printDiff(pathA, pathB string, d *kahrisma.ProfileReportDiff) {
	fmt.Printf("profile diff: %s -> %s", pathA, pathB)
	if d.CycleModel != "" {
		fmt.Printf(" (%s)", d.CycleModel)
	}
	fmt.Println()
	fmt.Printf("instructions %12d -> %-12d (%+d)\n", d.InstructionsA, d.InstructionsB, d.InstructionsDelta)
	fmt.Printf("operations   %12d -> %-12d (%+d)\n", d.OperationsA, d.OperationsB, d.OperationsDelta)
	fmt.Printf("cycles       %12d -> %-12d (%+d)\n", d.CyclesA, d.CyclesB, d.CyclesDelta)

	if len(d.ISAs) > 0 {
		fmt.Println("per-ISA attribution:")
		for _, s := range d.ISAs {
			fmt.Printf("  %-8s instr %12d -> %-12d (%+d)  cycles %12d -> %-12d (%+d)\n",
				s.ISA, s.InstructionsA, s.InstructionsB, s.InstructionsDelta,
				s.CyclesA, s.CyclesB, s.CyclesDelta)
		}
	}

	fmt.Printf("per-PC cycle movement (%d of %d PCs):\n", len(d.PCs), d.TotalPCs)
	fmt.Printf("  %12s %12s %10s  %-10s %-16s %s\n",
		"CYCLES-Δ", "COUNT-Δ", "COUNT-B", "PC", "FUNC", "FILE:LINE")
	for _, pc := range d.PCs {
		loc := ""
		if pc.File != "" {
			loc = pc.File + ":" + strconv.Itoa(pc.Line)
		}
		fmt.Printf("  %+12d %+12d %10d  %#-10x %-16s %s\n",
			pc.CyclesDelta, pc.CountDelta, pc.CountB, pc.PC, pc.Func, loc)
	}
}
