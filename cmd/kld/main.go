// Command kld links relocatable ELF objects into a KAHRISMA executable,
// injecting the startup code and the auto-generated C library stub
// functions (Sec. V-E of the paper).
//
// Usage:
//
//	kld [-o a.out] [-entry-isa RISC] [-text-base 0x1000] [-stack 0x400000] file.o...
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/kelf"
	"repro/internal/link"
	"repro/internal/targetgen"
)

func main() {
	out := flag.String("o", "a.out", "output executable")
	entryISA := flag.String("entry-isa", "", "ISA of the startup code (default: the ADL default ISA)")
	textBase := flag.Uint("text-base", 0x1000, "virtual address of .text")
	stackTop := flag.Uint("stack", 0x400000, "initial stack pointer")
	noStartup := flag.Bool("nostartup", false, "do not generate crt0")
	noLibc := flag.Bool("nolibc", false, "do not generate C library stubs")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "kld: no input objects")
		os.Exit(2)
	}
	model, err := targetgen.Kahrisma()
	if err != nil {
		fatal(err)
	}
	var objs []*kelf.File
	for _, path := range flag.Args() {
		o, err := kelf.ReadFile(path)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		objs = append(objs, o)
	}
	opt := link.Defaults()
	opt.EntryISA = *entryISA
	opt.TextBase = uint32(*textBase)
	opt.StackTop = uint32(*stackTop)
	opt.Startup = !*noStartup
	opt.LibC = !*noLibc
	exe, err := link.Link(model, objs, opt)
	if err != nil {
		fatal(err)
	}
	if err := exe.WriteFile(*out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kld: %v\n", err)
	os.Exit(1)
}
