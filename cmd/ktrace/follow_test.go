package main

import (
	"testing"
	"time"
)

// The reconnect backoff doubles from its base, caps, and jitters ±20% —
// a fleet of followers cut off together must not reconnect in lockstep.
func TestBackoffSequence(t *testing.T) {
	// rnd = 0.5 is the jitter midpoint: the undisturbed exponential.
	want := []time.Duration{
		500 * time.Millisecond,
		1 * time.Second,
		2 * time.Second,
		4 * time.Second,
		8 * time.Second,
		10 * time.Second, // capped
		10 * time.Second, // stays capped
	}
	for attempt, w := range want {
		if got := backoff(attempt, 0.5); got != w {
			t.Errorf("backoff(%d, 0.5) = %v, want %v", attempt, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	for attempt := 0; attempt < 8; attempt++ {
		mid := backoff(attempt, 0.5)
		lo := backoff(attempt, 0)
		hi := backoff(attempt, 0.999999)
		if lo != time.Duration(float64(mid)*(1-backoffJitter)) {
			t.Errorf("attempt %d: low jitter %v, want %v", attempt, lo, time.Duration(float64(mid)*0.8))
		}
		if hi < mid || hi >= time.Duration(float64(mid)*(1+backoffJitter)+1) {
			t.Errorf("attempt %d: high jitter %v out of bounds (mid %v)", attempt, hi, mid)
		}
		// The jittered delay never exceeds cap plus jitter, even far past
		// the doubling range.
		if max := time.Duration(float64(backoffCap) * (1 + backoffJitter)); hi > max {
			t.Errorf("attempt %d: %v exceeds jittered cap %v", attempt, hi, max)
		}
	}
}

// Two different jitter samples must give two different delays (the
// whole point of jitter); equal samples stay deterministic.
func TestBackoffJitterSpreads(t *testing.T) {
	if backoff(3, 0.1) == backoff(3, 0.9) {
		t.Error("distinct jitter samples produced identical delays")
	}
	if backoff(3, 0.3) != backoff(3, 0.3) {
		t.Error("equal jitter samples produced different delays")
	}
}
