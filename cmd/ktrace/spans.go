package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// spans implements "ktrace spans": reconstruct span trees from kservd's
// structured logs. Feed it the JSON log stream of a server running with
// -trace-spans -log-json (a file, or stdin via a pipe) and it groups
// the "span" records by trace id, stitches parents to children, and
// prints one indented tree per trace — the poor man's trace viewer for
// deployments without an OTLP collector (docs/observability.md).
func spans(args []string) {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	errOnly := fs.Bool("errors", false, "print only traces containing a failed span")
	_ = fs.Parse(args)
	in := io.Reader(os.Stdin)
	if fs.NArg() > 1 {
		usage()
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	traces, order, err := collectSpans(in)
	if err != nil {
		fatal(err)
	}
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "ktrace: no span records found (run kservd with -trace-spans -log-json)")
		os.Exit(1)
	}
	for _, id := range order {
		t := traces[id]
		if *errOnly && !t.failed {
			continue
		}
		printTrace(os.Stdout, id, t)
	}
}

// logSpan is one "span" log record, as serialized by slog's JSON
// handler from span.Span.End.
type logSpan struct {
	Time   time.Time `json:"time"`
	Msg    string    `json:"msg"`
	Span   string    `json:"span"`
	DurMS  float64   `json:"dur_ms"`
	Trace  string    `json:"trace_id"`
	ID     string    `json:"span_id"`
	Parent string    `json:"parent_id"`
	Err    string    `json:"error"`
}

// start derives the span's start instant from the record's timestamp
// (End logs at completion) and its duration.
func (s *logSpan) start() time.Time {
	return s.Time.Add(-time.Duration(s.DurMS * float64(time.Millisecond)))
}

// spanTree is every span of one trace, ready to render.
type spanTree struct {
	spans  []*logSpan
	failed bool
}

// collectSpans reads JSON log lines from r and groups span records by
// trace id, preserving first-seen trace order. Non-JSON lines and
// non-span records are skipped, so the raw mixed log stream works.
func collectSpans(r io.Reader) (map[string]*spanTree, []string, error) {
	traces := map[string]*spanTree{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 || line[0] != '{' {
			continue
		}
		var rec logSpan
		if err := json.Unmarshal(line, &rec); err != nil || rec.Msg != "span" || rec.Trace == "" {
			continue
		}
		t := traces[rec.Trace]
		if t == nil {
			t = &spanTree{}
			traces[rec.Trace] = t
			order = append(order, rec.Trace)
		}
		cp := rec
		t.spans = append(t.spans, &cp)
		if rec.Err != "" {
			t.failed = true
		}
	}
	return traces, order, sc.Err()
}

// printTrace renders one trace as an indented tree. Roots are spans
// whose parent is absent from the trace (including spans adopted from a
// remote caller via traceparent); siblings order by start time.
func printTrace(w io.Writer, id string, t *spanTree) {
	byID := map[string]*logSpan{}
	for _, s := range t.spans {
		byID[s.ID] = s
	}
	children := map[string][]*logSpan{}
	var roots []*logSpan
	for _, s := range t.spans {
		if s.Parent != "" && byID[s.Parent] != nil {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	byStart := func(list []*logSpan) {
		sort.Slice(list, func(i, j int) bool { return list[i].start().Before(list[j].start()) })
	}
	byStart(roots)
	for _, list := range children {
		byStart(list)
	}

	fmt.Fprintf(w, "trace %s (%d spans)\n", id, len(t.spans))
	var walk func(s *logSpan, depth int)
	walk = func(s *logSpan, depth int) {
		status := ""
		if s.Err != "" {
			status = "  ERROR: " + s.Err
		}
		fmt.Fprintf(w, "  %*s%-*s %9.2fms%s\n", 2*depth, "", 24-2*depth, s.Span, s.DurMS, status)
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}
