// Command ktrace works with simulator traces (Sec. V of the paper):
// compare two trace files for architectural equivalence (the ISS-vs-RTL
// validation flow), replay a trace as stimuli into the cycle-accurate
// pipeline model without re-running the simulation, or follow a running
// kservd job's live event stream over SSE (docs/streaming.md).
//
// Usage:
//
//	ktrace compare a.trace b.trace
//	ktrace replay  -isa VLIW4 a.trace
//	ktrace follow  -server http://localhost:8080 <job-id>
//	ktrace spans   [-errors] kservd.log
//
// "spans" reconstructs per-trace span trees from the structured logs of
// a kservd running with -trace-spans -log-json (docs/observability.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/rtl"
	"repro/internal/targetgen"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "compare":
		if len(os.Args) != 4 {
			usage()
		}
		a := readTrace(os.Args[2])
		b := readTrace(os.Args[3])
		if err := trace.Compare(a, b); err != nil {
			fmt.Println(err)
			os.Exit(1)
		}
		fmt.Printf("traces are architecturally identical (%d events)\n", len(a))
	case "replay":
		fs := flag.NewFlagSet("replay", flag.ExitOnError)
		isaName := fs.String("isa", "RISC", "ISA of the traced run")
		_ = fs.Parse(os.Args[2:])
		if fs.NArg() != 1 {
			usage()
		}
		model, err := targetgen.Kahrisma()
		if err != nil {
			fatal(err)
		}
		a := model.ISAByName(*isaName)
		if a == nil {
			fatal(fmt.Errorf("unknown ISA %q", *isaName))
		}
		events := readTrace(fs.Arg(0))
		pipe, err := rtl.ReplayTrace(model, a, events, rtl.DefaultConfig())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replayed %d events (%d operations) into %s\n",
			len(events), pipe.Ops(), pipe.Describe())
		fmt.Printf("hardware cycles: %d\n", pipe.Cycles())
	case "follow":
		follow(os.Args[2:])
	case "spans":
		spans(os.Args[2:])
	default:
		usage()
	}
}

func readTrace(path string) []trace.Event {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	evs, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	return evs
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ktrace compare a.trace b.trace | ktrace replay [-isa NAME] a.trace | ktrace follow [-server URL] job-id | ktrace spans [-errors] [logfile]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ktrace: %v\n", err)
	os.Exit(1)
}
