package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/trace"
)

// follow implements "ktrace follow": a minimal SSE client for kservd's
// GET /v1/jobs/{id}/events (docs/streaming.md). It prints each event as
// one line, reconnects with Last-Event-ID on transient stream errors,
// and exits when the job's stream reports done.
func follow(args []string) {
	fs := flag.NewFlagSet("follow", flag.ExitOnError)
	server := fs.String("server", "http://localhost:8080", "kservd base URL")
	from := fs.Uint64("from", 0, "start at this sequence number (0: replay what the ring holds)")
	raw := fs.Bool("raw", false, "print raw JSON payloads instead of one-line summaries")
	retries := fs.Int("retries", 5, "reconnect attempts after a broken stream")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	jobID := fs.Arg(0)

	var lastSeq uint64
	resume := false
	if *from > 0 {
		lastSeq, resume = *from-1, true
	}
	for attempt := 0; ; attempt++ {
		done, err := followOnce(*server, jobID, &lastSeq, resume, *raw)
		if done {
			return
		}
		resume = true // after any contact, reconnects carry Last-Event-ID
		if err != nil && attempt >= *retries {
			fatal(fmt.Errorf("stream broken after %d attempts: %v", attempt+1, err))
		}
		fmt.Fprintf(os.Stderr, "ktrace: stream interrupted (%v), reconnecting\n", err)
		time.Sleep(backoff(attempt, rand.Float64()))
	}
}

// Reconnect backoff tuning: exponential from backoffBase, capped at
// backoffCap, with ±20% jitter so a fleet of followers cut off by one
// server restart does not reconnect in lockstep.
const (
	backoffBase   = 500 * time.Millisecond
	backoffCap    = 10 * time.Second
	backoffJitter = 0.20
)

// backoff returns the sleep before reconnect attempt (0-based) attempt.
// rnd is a uniform sample from [0,1) — injected so tests can pin the
// jitter.
func backoff(attempt int, rnd float64) time.Duration {
	d := backoffBase
	for i := 0; i < attempt && d < backoffCap; i++ {
		d *= 2
	}
	if d > backoffCap {
		d = backoffCap
	}
	// Scale by a factor uniform in [1-jitter, 1+jitter).
	return time.Duration(float64(d) * (1 - backoffJitter + 2*backoffJitter*rnd))
}

// followOnce runs one SSE connection until the stream ends. It reports
// done=true when the terminal done event arrived (normal exit) and
// keeps *lastSeq current for resume.
func followOnce(server, jobID string, lastSeq *uint64, resume, raw bool) (bool, error) {
	req, err := http.NewRequest("GET", server+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		return false, err
	}
	if resume {
		req.Header.Set("Last-Event-ID", fmt.Sprint(*lastSeq))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fatal(fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body))))
	}

	r := bufio.NewReader(resp.Body)
	var event, data string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			if err == io.EOF {
				// Stream closed without a done event: the ring may have
				// evicted it, or the server went away mid-job.
				return false, fmt.Errorf("stream ended before done event")
			}
			return false, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if event == "" && data == "" {
				continue
			}
			if done := printEvent(event, data, lastSeq, raw); done {
				return true, nil
			}
			event, data = "", ""
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "id: "):
			// Sequence also lives in the payload; the id line is
			// authoritative for resume.
			fmt.Sscan(line[len("id: "):], lastSeq)
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		}
	}
}

// printEvent renders one frame and reports whether it was terminal.
func printEvent(event, data string, lastSeq *uint64, raw bool) bool {
	if raw {
		fmt.Printf("%s %s\n", event, data)
		return event == trace.EventDone
	}
	switch event {
	case "gap":
		var g struct {
			Missed uint64 `json:"missed"`
		}
		json.Unmarshal([]byte(data), &g)
		fmt.Printf("gap: %d events evicted before delivery\n", g.Missed)
		return false
	case trace.EventDone:
		var ev trace.StreamEvent
		json.Unmarshal([]byte(data), &ev)
		if ev.Done == nil {
			fmt.Println("done")
		} else if ev.Done.Error != "" {
			fmt.Printf("done: failed after %d instructions: %s\n", ev.Done.Instructions, ev.Done.Error)
		} else {
			fmt.Printf("done: exit %d after %d instructions\n", ev.Done.ExitCode, ev.Done.Instructions)
		}
		return true
	}
	var ev trace.StreamEvent
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		fmt.Printf("%s %s\n", event, data)
		return false
	}
	switch {
	case ev.Progress != nil:
		fmt.Printf("progress: %d instr, %d ops, %d cycles, isa %s, fuel %d\n",
			ev.Progress.Instructions, ev.Progress.Operations, ev.Progress.Cycles,
			ev.Progress.ISA, ev.Progress.FuelRemaining)
	case ev.ISASwitch != nil:
		fmt.Printf("isa_switch: %s -> %s @ %d instr\n",
			ev.ISASwitch.From, ev.ISASwitch.To, ev.ISASwitch.Instructions)
	case ev.Op != nil:
		fmt.Printf("op: cycle %d pc 0x%X slot %d %s\n",
			ev.Op.Cycle, ev.Op.Addr, ev.Op.Slot, ev.Op.Op)
	default:
		fmt.Printf("%s %s\n", event, data)
	}
	return false
}
