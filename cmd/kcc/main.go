// Command kcc is the retargetable MiniC compiler of the KAHRISMA
// toolchain: it translates MiniC source files into target-dependent
// assembly for any ISA described in the ADL (Sec. IV of the paper).
//
// Usage:
//
//	kcc [-isa RISC] [-o out.s] file.c...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cc"
	"repro/internal/targetgen"
)

func main() {
	isaName := flag.String("isa", "RISC", "target ISA (default for functions without __isa)")
	out := flag.String("o", "", "output file (default: stdout)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "kcc: no input files")
		os.Exit(2)
	}
	model, err := targetgen.Kahrisma()
	if err != nil {
		fatal(err)
	}
	var sb strings.Builder
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		asmText, err := cc.Compile(model, cc.Options{ISA: *isaName}, path, string(src))
		if err != nil {
			fatal(err)
		}
		sb.WriteString(asmText)
	}
	if *out == "" {
		fmt.Print(sb.String())
		return
	}
	if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kcc: %v\n", err)
	os.Exit(1)
}
