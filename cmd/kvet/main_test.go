package main

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

var testSentinels = map[string]bool{"ErrBadISA": true, "ErrFuelExhausted": true}

func run(t *testing.T, base, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, base, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return checkFile(fset, f, base, testSentinels)
}

func TestRunLegacyRule(t *testing.T) {
	// The shim is deleted; every occurrence is a reintroduction. A call
	// names both identifiers, so it yields two findings.
	const use = `package p
func f(e E) { e.RunLegacy(RunConfig{}) }
`
	got := run(t, "other.go", use)
	if len(got) != 2 || !strings.Contains(got[0], "runlegacy") {
		t.Errorf("RunLegacy use: findings %v, want 2 runlegacy", got)
	}
	// No file is exempt anymore — not even the former definition site.
	for _, base := range []string{"kahrisma.go", "kahrisma_test.go"} {
		if got := run(t, base, use); len(got) != 2 {
			t.Errorf("RunLegacy in %s: findings %v, want 2", base, got)
		}
	}
	const decl = `package p
func (e E) RunLegacy(c C) {}
`
	if got := run(t, "shim.go", decl); len(got) != 1 {
		t.Errorf("RunLegacy declaration: findings %v, want 1", got)
	}
	const typ = `package p
type RunConfig struct{}
`
	if got := run(t, "config.go", typ); len(got) != 1 {
		t.Errorf("RunConfig declaration: findings %v, want 1", got)
	}
}

func TestSubmitShimRule(t *testing.T) {
	// The pre-Batch submission shims are deleted too: declarations and
	// uses of SubmitJobs/SubmitEach are reintroductions.
	const decl = `package p
func (p *Pool) SubmitJobs(items []BatchItem) []*Job { return nil }
`
	if got := run(t, "pool.go", decl); len(got) != 1 || !strings.Contains(got[0], "runlegacy") {
		t.Errorf("SubmitJobs declaration: findings %v, want 1 runlegacy", got)
	}
	const use = `package p
func f(p *Pool) { p.SubmitEach(nil, nil) }
`
	if got := run(t, "caller_test.go", use); len(got) != 1 {
		t.Errorf("SubmitEach use: findings %v, want 1", got)
	}
	// SubmitBatch is the supported API and must stay clean.
	const ok = `package p
func f(p *Pool) { p.SubmitBatch(nil, nil) }
`
	if got := run(t, "caller.go", ok); len(got) != 0 {
		t.Errorf("SubmitBatch use: findings %v, want none", got)
	}
}

func TestErrWrapRule(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		// Stringifying a sentinel breaks errors.Is for callers.
		{`fmt.Errorf("run: %v", ErrBadISA)`, 1},
		{`fmt.Errorf("run: %s", kahrisma.ErrBadISA)`, 1},
		// Wrapping is the required form.
		{`fmt.Errorf("run: %w", ErrBadISA)`, 0},
		{`fmt.Errorf("isa %q: %w", name, ErrBadISA)`, 0},
		// Verb positions are matched per argument, * included.
		{`fmt.Errorf("%*d fuel: %w", width, n, ErrFuelExhausted)`, 0},
		{`fmt.Errorf("%w and %v", ErrBadISA, ErrFuelExhausted)`, 1},
		// Non-sentinel errors are none of kvet's business.
		{`fmt.Errorf("run: %v", err)`, 0},
	}
	for _, c := range cases {
		src := "package p\nfunc f() { _ = " + c.src + " }\n"
		if got := run(t, "x.go", src); len(got) != c.want {
			t.Errorf("%s: findings %v, want %d", c.src, got, c.want)
		}
	}
}

func runObsReg(t *testing.T, path, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return checkObsReg(fset, f, path)
}

func TestObsRegRule(t *testing.T) {
	// A raw atomic counter inside a metrics struct is the pattern the
	// obs registry replaced; embedded pointers count too.
	const raw = `package server
import "sync/atomic"
type metrics struct {
	accepted atomic.Uint64
	failed   *atomic.Int64
	reg      int
}
`
	got := runObsReg(t, "internal/server/metrics.go", raw)
	if len(got) != 2 || !strings.Contains(got[0], "obsreg") {
		t.Errorf("raw atomic metrics fields: findings %v, want 2 obsreg", got)
	}
	// The registry itself builds instruments from atomics — exempt.
	if got := runObsReg(t, "internal/obs/registry.go", raw); len(got) != 0 {
		t.Errorf("internal/obs exempt: findings %v, want none", got)
	}
	// Atomics outside metrics structs (lifecycle flags etc.) are fine.
	const flag = `package server
import "sync/atomic"
type Server struct {
	draining atomic.Bool
}
`
	if got := runObsReg(t, "internal/server/server.go", flag); len(got) != 0 {
		t.Errorf("non-metrics atomic field: findings %v, want none", got)
	}
	// expvar is flagged anywhere outside internal/obs.
	const ev = `package server
import "expvar"
var hits = expvar.NewInt("hits")
`
	if got := runObsReg(t, "internal/server/extra.go", ev); len(got) != 1 || !strings.Contains(got[0], "expvar") {
		t.Errorf("expvar import: findings %v, want 1", got)
	}
}

// The repo itself must be kvet-clean: the sentinel list parses out of
// the real errors.go and no file violates either rule.
func TestRepoIsClean(t *testing.T) {
	root := filepath.Join("..", "..")
	sentinels, err := sentinelNames(filepath.Join(root, "errors.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ErrBadISA", "ErrBadModel", "ErrFuelExhausted", "ErrCanceled", "ErrPoolClosed"} {
		if !sentinels[want] {
			t.Errorf("sentinel %s not found in errors.go", want)
		}
	}
}

func TestDocsyncConstCheckIDs(t *testing.T) {
	const src = `package analysis
const (
	CheckUninit    = "KB006"
	CheckDeadStore = "KB007"
	otherConst     = "not-an-id"
	numeric        = 42
)
const CheckAmbiguous = "KA001"
var notConst = "KB999"
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "diag.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := constCheckIDs(f)
	want := []string{"KB006", "KB007", "KA001"}
	if len(got) != len(want) {
		t.Fatalf("constCheckIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("constCheckIDs = %v, want %v", got, want)
		}
	}
}

func TestDocsyncMissingDocIDs(t *testing.T) {
	doc := "| KA001 | ambiguous |\n| KB006 | uninitialized read |\n"
	ids := []string{"KA001", "KB006", "KB007", "KB010", "KB007"}
	got := missingDocIDs(ids, doc)
	if len(got) != 2 || got[0] != "KB007" || got[1] != "KB010" {
		t.Fatalf("missingDocIDs = %v, want [KB007 KB010]", got)
	}
	if got := missingDocIDs([]string{"KA001"}, doc); len(got) != 0 {
		t.Fatalf("documented ID reported missing: %v", got)
	}
}
