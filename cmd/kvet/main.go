// Command kvet is the repo's host-side custom linter: Go-source checks
// that gofmt and go vet do not cover, run by `make verify` and CI.
//
// Checks:
//
//   - runlegacy: deleted shims stay deleted. The
//     Executable.RunLegacy/RunConfig shim went with the Batch API
//     redesign, the Pool.SubmitJobs/simpool.SubmitEach shims with the
//     campaign subsystem; any identifier carrying one of those names —
//     declaration or use, anywhere — is a reintroduction and is
//     flagged. Use Run with functional options and SubmitBatch with
//     the *Batch handle.
//   - errwrap: a fmt.Errorf call that passes one of the facade's
//     sentinel errors (the Err* variables of errors.go) must wrap it
//     with %w, never stringify it with %v/%s — otherwise errors.Is
//     classification breaks for callers.
//   - docsync: every analysis check ID declared as a string constant
//     in internal/analysis (KA001, KB007, ...) must appear in
//     docs/analysis.md — the check catalogue users and the SARIF rule
//     table point at. An undocumented check is a finding.
//   - obsreg: server metrics go through the typed internal/obs registry
//     (docs/observability.md), never ad-hoc state. Importing expvar, or
//     declaring a sync/atomic-typed field inside a struct whose name
//     mentions "metrics", is a finding everywhere except internal/obs
//     itself — the one place instruments are built from atomics.
//
// kvet uses the standard library's go/parser and go/ast only (the
// go/analysis framework lives in golang.org/x/tools, which this repo
// does not depend on); checks are purely syntactic.
//
// Usage:
//
//	kvet [dir]
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on
// operational failure.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// legacyIdents names the identifiers of deleted shims: the
// RunLegacy/RunConfig run API and the SubmitJobs/SubmitEach pre-Batch
// submission forms. No file is exempt: the shims are gone, so any
// occurrence is a reintroduction. (kvet's own sources only carry the
// names inside string literals and comments, which the AST walk does
// not visit.)
var legacyIdents = map[string]bool{
	"RunLegacy":  true,
	"RunConfig":  true,
	"SubmitJobs": true,
	"SubmitEach": true,
}

func main() {
	root := "."
	if len(os.Args) > 2 {
		fmt.Fprintln(os.Stderr, "usage: kvet [dir]")
		os.Exit(2)
	}
	if len(os.Args) == 2 {
		root = os.Args[1]
	}

	sentinels, err := sentinelNames(filepath.Join(root, "errors.go"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvet: %v\n", err)
		os.Exit(2)
	}

	var findings []string
	var checkIDs []string
	analysisDir := filepath.Join(root, "internal", "analysis")
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "bin") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		findings = append(findings, checkFile(fset, f, filepath.Base(path), sentinels)...)
		findings = append(findings, checkObsReg(fset, f, path)...)
		if filepath.Dir(path) == analysisDir && !strings.HasSuffix(path, "_test.go") {
			checkIDs = append(checkIDs, constCheckIDs(f)...)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvet: %v\n", err)
		os.Exit(2)
	}

	if len(checkIDs) > 0 {
		docPath := filepath.Join(root, "docs", "analysis.md")
		doc, err := os.ReadFile(docPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvet: %v\n", err)
			os.Exit(2)
		}
		for _, id := range missingDocIDs(checkIDs, string(doc)) {
			findings = append(findings,
				fmt.Sprintf("%s: check %s is declared in internal/analysis but not documented (docsync)", docPath, id))
		}
	}

	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "kvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// sentinelNames parses the facade's errors.go and returns the names of
// its exported Err* variables — the sentinels the errwrap check guards.
func sentinelNames(path string) (map[string]bool, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	names := map[string]bool{}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, n := range vs.Names {
				if strings.HasPrefix(n.Name, "Err") {
					names[n.Name] = true
				}
			}
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no Err* sentinels found", path)
	}
	return names, nil
}

// checkFile runs both checks over one parsed file and returns findings
// in "file:line:col: message" form.
func checkFile(fset *token.FileSet, f *ast.File, base string, sentinels map[string]bool) []string {
	var out []string
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			// Selector fields (x.RunLegacy) are Idents too, so one case
			// catches declarations, bare uses and selector uses alike.
			if legacyIdents[n.Name] {
				report(n.Pos(), "identifier %s reintroduces a deleted shim; use Run with options / SubmitBatch (runlegacy)", n.Name)
			}
		case *ast.CallExpr:
			checkErrorf(report, n, sentinels)
		}
		return true
	})
	return out
}

// checkErrorf enforces the errwrap rule on one call expression: every
// sentinel argument of fmt.Errorf must correspond to a %w verb.
func checkErrorf(report func(token.Pos, string, ...any), call *ast.CallExpr, sentinels map[string]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		name := sentinelName(arg, sentinels)
		if name == "" {
			continue
		}
		verb := ""
		if i < len(verbs) {
			verb = verbs[i]
		}
		if verb != "w" {
			report(arg.Pos(), "sentinel %s passed to fmt.Errorf with %%%s; wrap it with %%w so errors.Is keeps working (errwrap)",
				name, verb)
		}
	}
}

// sentinelName returns the sentinel's name if the expression references
// one (bare identifier or pkg.Name selector), else "".
func sentinelName(e ast.Expr, sentinels map[string]bool) string {
	switch e := e.(type) {
	case *ast.Ident:
		if sentinels[e.Name] {
			return e.Name
		}
	case *ast.SelectorExpr:
		if _, ok := e.X.(*ast.Ident); ok && sentinels[e.Sel.Name] {
			return e.Sel.Name
		}
	}
	return ""
}

// formatVerbs extracts the verb letter of each argument-consuming
// conversion in a fmt format string, in argument order. Width and
// precision given as '*' consume an argument and are returned as "*".
func formatVerbs(format string) []string {
	var verbs []string
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// Flags, width, precision; '*' consumes an argument of its own.
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, "*")
				i++
				continue
			}
			if strings.ContainsRune("+-# 0.123456789[]", rune(c)) {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, string(format[i]))
		}
	}
	return verbs
}

// checkObsReg enforces the metrics-registry rule on one parsed file:
// outside internal/obs, metric state must use obs instruments. Two
// syntactic tells are flagged — importing expvar at all, and declaring
// a sync/atomic-typed field inside a struct whose name mentions
// "metrics" (the raw-counter pattern the obs registry replaced).
func checkObsReg(fset *token.FileSet, f *ast.File, path string) []string {
	if strings.Contains(filepath.ToSlash(path), "internal/obs/") {
		return nil
	}
	var out []string
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}
	for _, imp := range f.Imports {
		if imp.Path.Value == `"expvar"` {
			report(imp.Pos(), "expvar import; publish metrics through the internal/obs registry instead (obsreg)")
		}
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || !strings.Contains(strings.ToLower(ts.Name.Name), "metrics") {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, field := range st.Fields.List {
				if atomicTypeName(field.Type) == "" {
					continue
				}
				report(field.Pos(), "struct %s declares a raw atomic.%s metric field; use an internal/obs instrument (obsreg)",
					ts.Name.Name, atomicTypeName(field.Type))
			}
		}
	}
	return out
}

// atomicTypeName returns the sync/atomic type name when the field type
// references one (atomic.Uint64, *atomic.Int32, ...), else "".
func atomicTypeName(e ast.Expr) string {
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "atomic" {
		return ""
	}
	return sel.Sel.Name
}

// checkIDPattern matches analysis check identifiers: a K, a category
// letter, three digits (KA001, KB010, ...).
var checkIDPattern = regexp.MustCompile(`^K[A-Z]\d{3}$`)

// constCheckIDs returns the analysis check IDs declared as string
// constants in one parsed file, e.g. `CheckUninit = "KB006"`.
func constCheckIDs(f *ast.File) []string {
	var ids []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				lit, ok := v.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				s, err := strconv.Unquote(lit.Value)
				if err != nil {
					continue
				}
				if checkIDPattern.MatchString(s) {
					ids = append(ids, s)
				}
			}
		}
	}
	return ids
}

// missingDocIDs returns the IDs (sorted, deduplicated) that the doc
// text does not mention.
func missingDocIDs(ids []string, doc string) []string {
	seen := map[string]bool{}
	var out []string
	for _, id := range ids {
		if seen[id] || strings.Contains(doc, id) {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
