package kahrisma

import (
	"context"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/simpool"
)

// Pool runs batches of independent simulations concurrently on a fixed
// set of workers (internal/simpool). The elaborated architecture model
// and the linked program of each Executable are immutable and shared
// across workers; every job gets its own CPU state, decode cache,
// cycle models and memory hierarchy, so per-job results are
// bit-identical to serial runs regardless of worker count or
// scheduling (see docs/simpool.md).
//
//	pool := kahrisma.NewPool(0) // GOMAXPROCS workers
//	defer pool.Close()
//	var jobs []*kahrisma.Job
//	for _, isaName := range sys.ISAs() {
//	    exe, _ := sys.BuildC(isaName, files)
//	    jobs = append(jobs, pool.Submit(ctx, exe, kahrisma.WithModels("DOE")))
//	}
//	for _, j := range jobs {
//	    res, err := j.Wait()
//	    ...
//	}
type Pool struct {
	pool *simpool.Pool

	mu           sync.Mutex
	wallPerModel map[string]time.Duration
}

// NewPool starts a simulation pool with the given number of workers;
// workers <= 0 selects GOMAXPROCS. Close must be called to release the
// workers.
func NewPool(workers int) *Pool {
	return &Pool{
		pool:         simpool.New(workers),
		wallPerModel: map[string]time.Duration{},
	}
}

// Job is a handle to one submitted simulation.
type Job struct {
	ticket *simpool.Ticket
	setup  *runSetup
	err    error // submit-time configuration error

	once sync.Once
	res  *RunResult
	wErr error
}

// Wait blocks until the job finished and returns its result. Wait may
// be called from any goroutine, any number of times.
func (j *Job) Wait() (*RunResult, error) {
	j.once.Do(func() {
		if j.err != nil {
			j.wErr = j.err
			return
		}
		r := j.ticket.Wait()
		if r.Err != nil {
			j.wErr = r.Err
			return
		}
		j.res = j.setup.collect(r.CPU, r.Status)
	})
	return j.res, j.wErr
}

// Done returns a channel closed when the job has finished (nil jobs
// that failed at submit time return an already-closed channel).
func (j *Job) Done() <-chan struct{} {
	if j.err != nil {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	return j.ticket.Done()
}

// Submit enqueues one simulation of exe under ctx and returns
// immediately. The same Executable may be submitted many times,
// concurrently, with different options. Cancellation of ctx aborts the
// job whether queued or running; WithTimeout bounds the job's own
// wall-clock time. Configuration errors (unknown model, bad memory
// spec) and submissions after Close (ErrPoolClosed) surface on Wait.
func (p *Pool) Submit(ctx context.Context, exe *Executable, opts ...Option) *Job {
	cfg := resolveOptions(opts)
	simOpts, setup, err := exe.prepare(cfg)
	if err != nil {
		return &Job{err: err}
	}
	job := &Job{setup: setup}
	models := cfg.Models
	job.ticket = p.pool.Submit(ctx, simpool.Job{
		Model:   exe.sys.model,
		Prog:    exe.prog,
		Opts:    simOpts,
		Timeout: cfg.Timeout,
		Attach: func(c *sim.CPU) error {
			setup.attach(c)
			return nil
		},
		OnDone: func(r simpool.Result) {
			p.mu.Lock()
			if len(models) == 0 {
				p.wallPerModel["functional"] += r.Wall
			}
			for _, m := range models {
				p.wallPerModel[m] += r.Wall
			}
			p.mu.Unlock()
		},
	})
	return job
}

// BatchItem is one entry of SubmitBatch: an executable plus its run
// options. Items of one batch may use different executables, models
// and memory hierarchies.
type BatchItem struct {
	Exe  *Executable
	Opts []Option
}

// SubmitBatch enqueues many simulations in order and returns their
// handles, index-aligned with items.
func (p *Pool) SubmitBatch(ctx context.Context, items []BatchItem) []*Job {
	jobs := make([]*Job, len(items))
	for i, it := range items {
		jobs[i] = p.Submit(ctx, it.Exe, it.Opts...)
	}
	return jobs
}

// Wait blocks until every job submitted so far has completed; the pool
// stays open for further submissions.
func (p *Pool) Wait() { p.pool.Wait() }

// Close waits for outstanding jobs and stops the workers. Further
// submissions return a Job whose Wait fails with an error wrapping
// ErrPoolClosed. Close is idempotent.
func (p *Pool) Close() { p.pool.Close() }

// PoolStats is a point-in-time snapshot of the pool's throughput
// counters.
type PoolStats struct {
	Workers     int
	JobsQueued  int64
	JobsRunning int64
	JobsDone    int64
	JobsFailed  int64

	// QueueDepth is the number of accepted jobs waiting for a worker,
	// InFlight the accepted-but-unfinished total (queued + running) and
	// QueueCap the buffered capacity of the submission queue — the
	// backpressure snapshot a serving layer (cmd/kservd) exports on its
	// /metrics endpoint.
	QueueDepth int64
	InFlight   int64
	QueueCap   int

	// Instructions/Operations retired across all finished jobs.
	Instructions uint64
	Operations   uint64
	// DecodeCacheHitRate aggregates the per-CPU decode caches
	// (hits/lookups) over finished jobs; PredictionHitRate does the same
	// for instruction prediction (predicted fetches over total fetches).
	DecodeCacheHitRate float64
	PredictionHitRate  float64
	// DecodeCacheEvictions counts decode structures discarded by bounded
	// caches (WithDecodeCacheCap) across finished jobs.
	DecodeCacheEvictions uint64
	// Wall is the summed per-job simulation time; WallPerModel splits
	// it by activated cycle model ("functional" = no model attached).
	Wall         time.Duration
	WallPerModel map[string]time.Duration
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() PoolStats {
	s := p.pool.Stats()
	out := PoolStats{
		Workers:              s.Workers,
		JobsQueued:           s.Queued,
		JobsRunning:          s.Running,
		JobsDone:             s.Done,
		JobsFailed:           s.Failed,
		QueueDepth:           s.Queued,
		InFlight:             s.InFlight,
		QueueCap:             s.QueueCap,
		Instructions:         s.Instructions,
		Operations:           s.Operations,
		DecodeCacheHitRate:   s.DecodeCacheHitRate(),
		PredictionHitRate:    s.PredictionHitRate(),
		DecodeCacheEvictions: s.CacheEvictions,
		Wall:                 s.Wall,
		WallPerModel:         map[string]time.Duration{},
	}
	p.mu.Lock()
	for k, v := range p.wallPerModel {
		out.WallPerModel[k] = v
	}
	p.mu.Unlock()
	return out
}
