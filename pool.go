package kahrisma

import (
	"context"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/sim"
	"repro/internal/simpool"
)

// Pool runs batches of independent simulations concurrently on a fixed
// set of workers (internal/simpool). The elaborated architecture model
// and the linked program of each Executable are immutable and shared
// across workers; every job gets its own CPU state, decode cache,
// cycle models and memory hierarchy, so per-job results are
// bit-identical to serial runs regardless of worker count or
// scheduling (see docs/simpool.md). Per-job CPU allocations (memory
// pages, decode-cache buckets) are recycled across jobs of the same
// executable; recycled state is reset before reuse, so the determinism
// guarantee is unaffected.
//
//	pool := kahrisma.NewPool(0) // GOMAXPROCS workers
//	defer pool.Close()
//	batch := pool.SubmitBatch(ctx, items)
//	if err := batch.Wait(ctx); err != nil {
//	    ...
//	}
//	for _, res := range batch.Results() {
//	    ...
//	}
type Pool struct {
	pool *simpool.Pool

	mu           sync.Mutex
	wallPerModel map[string]time.Duration
	// campaignCache is the pool's shared fingerprint-keyed campaign
	// result cache, built lazily by the first RunCampaign.
	campaignCache *campaign.Cache
}

// NewPool starts a simulation pool with the given number of workers;
// workers <= 0 selects GOMAXPROCS. Close must be called to release the
// workers.
func NewPool(workers int) *Pool {
	return &Pool{
		pool:         simpool.New(workers),
		wallPerModel: map[string]time.Duration{},
	}
}

// Job is a handle to one submitted simulation.
type Job struct {
	ticket *simpool.Ticket
	err    error // submit-time configuration error

	// res is assembled by the worker (simpool OnDone) before the ticket
	// unblocks, so reading it after ticket.Wait() is race-free and the
	// worker can recycle the CPU immediately after.
	res *RunResult
}

// Wait blocks until the job finished and returns its result. Wait may
// be called from any goroutine, any number of times.
func (j *Job) Wait() (*RunResult, error) {
	if j.err != nil {
		return nil, j.err
	}
	r := j.ticket.Wait()
	if r.Err != nil {
		return nil, r.Err
	}
	return j.res, nil
}

// Done returns a channel closed when the job has finished (jobs that
// failed at submit time return an already-closed channel).
func (j *Job) Done() <-chan struct{} {
	if j.err != nil {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	return j.ticket.Done()
}

// jobSpec assembles the simpool job for one prepared submission. The
// worker harvests the RunResult in OnDone — before the ticket unblocks
// and before the CPU is recycled back into the arena.
func (p *Pool) jobSpec(exe *Executable, cfg runConfig, simOpts sim.Options, setup *runSetup, job *Job) simpool.Job {
	models := cfg.Models
	return simpool.Job{
		Model:   exe.sys.model,
		Prog:    exe.prog,
		Opts:    simOpts,
		Timeout: cfg.Timeout,
		Recycle: true,
		Attach: func(c *sim.CPU) error {
			setup.attach(c)
			return nil
		},
		OnDone: func(r simpool.Result) {
			if r.Err == nil && r.CPU != nil {
				job.res = setup.collect(r.CPU, r.Status)
				job.res.QueueWait = r.Queued
				job.res.SimWall = r.Wall
			}
			p.mu.Lock()
			if len(models) == 0 {
				p.wallPerModel["functional"] += r.Wall
			}
			for _, m := range models {
				p.wallPerModel[m] += r.Wall
			}
			p.mu.Unlock()
		},
	}
}

// Submit enqueues one simulation of exe under ctx and returns
// immediately. The same Executable may be submitted many times,
// concurrently, with different options. Cancellation of ctx aborts the
// job whether queued or running; WithTimeout bounds the job's own
// wall-clock time. Configuration errors (unknown model, bad memory
// spec) and submissions after Close (ErrPoolClosed) surface on Wait.
func (p *Pool) Submit(ctx context.Context, exe *Executable, opts ...Option) *Job {
	cfg := resolveOptions(opts)
	simOpts, setup, err := exe.prepare(cfg)
	if err != nil {
		return &Job{err: err}
	}
	job := &Job{}
	job.ticket = p.pool.Submit(ctx, p.jobSpec(exe, cfg, simOpts, setup, job))
	return job
}

// BatchItem is one entry of SubmitBatch: an executable plus its run
// options. Items of one batch may use different executables, models
// and memory hierarchies.
type BatchItem struct {
	Exe  *Executable
	Opts []Option
}

// Batch is the handle to one SubmitBatch call: aggregate completion
// (Wait/Done), index-aligned per-item results, the first error in
// submission order, merged throughput counters and merged profiles.
type Batch struct {
	jobs  []*Job
	inner *simpool.Batch
}

// SubmitBatch enqueues the items in order and returns the batch handle.
// Items that fail submit-time configuration (unknown model, bad memory
// spec) occupy their slot with that error; the remaining items are
// dispatched to the workers in chunked runs. Submitting to a closed
// pool yields a batch whose items all fail with ErrPoolClosed.
func (p *Pool) SubmitBatch(ctx context.Context, items []BatchItem) *Batch {
	jobs := make([]*Job, len(items))
	var simJobs []simpool.Job
	var submitted []*Job // parallel to simJobs
	for i, it := range items {
		cfg := resolveOptions(it.Opts)
		simOpts, setup, err := it.Exe.prepare(cfg)
		if err != nil {
			jobs[i] = &Job{err: err}
			continue
		}
		job := &Job{}
		jobs[i] = job
		simJobs = append(simJobs, p.jobSpec(it.Exe, cfg, simOpts, setup, job))
		submitted = append(submitted, job)
	}
	inner := p.pool.SubmitBatch(ctx, simJobs)
	for k, t := range inner.Tickets() {
		submitted[k].ticket = t
	}
	return &Batch{jobs: jobs, inner: inner}
}

// Len returns the number of items in the batch.
func (b *Batch) Len() int { return len(b.jobs) }

// Jobs returns the per-item handles, index-aligned with the submitted
// items — for callers that want per-item completion granularity.
func (b *Batch) Jobs() []*Job { return b.jobs }

// Done returns a channel closed when every item of the batch has
// finished (items that failed at submit time count as finished).
func (b *Batch) Done() <-chan struct{} { return b.inner.Done() }

// Wait blocks until the whole batch finished or ctx is done. It returns
// the first error in submission order (nil when every item succeeded);
// a ctx abort returns ctx.Err() without waiting further — the items
// keep running under their submission context.
func (b *Batch) Wait(ctx context.Context) error {
	// A finished batch wins over a done waiting context, so Wait on a
	// completed batch is deterministic.
	select {
	case <-b.inner.Done():
		return b.Err()
	default:
	}
	select {
	case <-b.inner.Done():
		return b.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Err blocks until the batch finished and returns the first item error
// in submission order: submit-time configuration errors and run errors
// alike. It is nil when every item succeeded.
func (b *Batch) Err() error {
	for _, j := range b.jobs {
		if _, err := j.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// Results blocks until the batch finished and returns the per-item
// results, index-aligned with the submitted items; failed items (their
// error is available via Err or Jobs()[i].Wait()) hold nil.
func (b *Batch) Results() []*RunResult {
	out := make([]*RunResult, len(b.jobs))
	for i, j := range b.jobs {
		out[i], _ = j.Wait()
	}
	return out
}

// BatchStats are the merged throughput counters of one completed batch
// (unlike PoolStats, which aggregates over the pool's lifetime).
type BatchStats struct {
	Jobs   int // items in the batch
	Failed int // items that ended in an error (submit-time or run-time)

	// Instructions/Operations retired across the batch's successful and
	// partially-run items.
	Instructions uint64
	Operations   uint64

	// Cycles per cycle-model name, summed over the batch's items.
	Cycles map[string]uint64

	// Wall is the summed per-item simulation time on the workers.
	Wall time.Duration
}

// Stats blocks until the batch finished and returns its merged
// counters.
func (b *Batch) Stats() BatchStats {
	st := BatchStats{Jobs: len(b.jobs), Cycles: map[string]uint64{}}
	inner := b.inner.Stats()
	st.Instructions = inner.Instructions
	st.Operations = inner.Operations
	st.Wall = inner.Wall
	for _, j := range b.jobs {
		res, err := j.Wait()
		if err != nil {
			st.Failed++
			continue
		}
		for m, c := range res.Cycles {
			st.Cycles[m] += c
		}
	}
	return st
}

// MergeProfiles blocks until the batch finished and folds the items'
// microarchitectural profiles (WithProfiling) into one; items without a
// profile are skipped. Merging is commutative, so the result is
// bit-identical regardless of worker count or completion order.
func (b *Batch) MergeProfiles() *Profile {
	var profiles []*Profile
	for _, res := range b.Results() {
		if res != nil {
			profiles = append(profiles, res.Profile)
		}
	}
	return MergeProfiles(profiles...)
}

// Wait blocks until every job submitted so far has completed; the pool
// stays open for further submissions.
func (p *Pool) Wait() { p.pool.Wait() }

// Close waits for outstanding jobs and stops the workers. Further
// submissions return a Job whose Wait fails with an error wrapping
// ErrPoolClosed. Close is idempotent.
func (p *Pool) Close() { p.pool.Close() }

// PoolStats is a point-in-time snapshot of the pool's throughput
// counters.
type PoolStats struct {
	Workers     int
	JobsQueued  int64
	JobsRunning int64
	JobsDone    int64
	JobsFailed  int64

	// QueueDepth is the number of accepted jobs waiting for a worker,
	// InFlight the accepted-but-unfinished total (queued + running) and
	// QueueCap the buffered capacity of the submission queue — the
	// backpressure snapshot a serving layer (cmd/kservd) exports on its
	// /metrics endpoint.
	QueueDepth int64
	InFlight   int64
	QueueCap   int

	// Instructions/Operations retired across all finished jobs.
	Instructions uint64
	Operations   uint64
	// DecodeCacheHitRate aggregates the per-CPU decode caches
	// (hits/lookups) over finished jobs; PredictionHitRate does the same
	// for instruction prediction (predicted fetches over total fetches).
	DecodeCacheHitRate float64
	PredictionHitRate  float64
	// DecodeCacheEvictions counts decode structures discarded by bounded
	// caches (WithDecodeCacheCap) across finished jobs.
	DecodeCacheEvictions uint64
	// Wall is the summed per-job simulation time; WallPerModel splits
	// it by activated cycle model ("functional" = no model attached).
	Wall         time.Duration
	WallPerModel map[string]time.Duration
}

// Stats snapshots the pool counters (merged from the per-worker shards,
// see docs/simpool.md).
func (p *Pool) Stats() PoolStats {
	s := p.pool.Stats()
	out := PoolStats{
		Workers:              s.Workers,
		JobsQueued:           s.Queued,
		JobsRunning:          s.Running,
		JobsDone:             s.Done,
		JobsFailed:           s.Failed,
		QueueDepth:           s.Queued,
		InFlight:             s.InFlight,
		QueueCap:             s.QueueCap,
		Instructions:         s.Instructions,
		Operations:           s.Operations,
		DecodeCacheHitRate:   s.DecodeCacheHitRate(),
		PredictionHitRate:    s.PredictionHitRate(),
		DecodeCacheEvictions: s.CacheEvictions,
		Wall:                 s.Wall,
		WallPerModel:         map[string]time.Duration{},
	}
	p.mu.Lock()
	for k, v := range p.wallPerModel {
		out.WallPerModel[k] = v
	}
	p.mu.Unlock()
	return out
}
