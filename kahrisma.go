// Package kahrisma is the public facade of the KAHRISMA
// cycle-approximate, mixed-ISA simulation framework — a from-scratch
// reproduction of Stripf, Koenig and Becker, "A cycle-approximate,
// mixed-ISA simulator for the KAHRISMA architecture" (DATE 2012).
//
// The facade wires the ADL-elaborated architecture model, the MiniC
// compiler, the assembler, the linker, the interpretation-based
// instruction set simulator, the three cycle-approximation models
// (ILP / AIE / DOE), the composable memory-delay hierarchy, and the
// cycle-accurate RTL reference pipeline into a small API:
//
//	sys, _ := kahrisma.New()
//	exe, _ := sys.BuildC("VLIW4", map[string]string{"main.c": src})
//	res, _ := exe.Run(ctx, kahrisma.WithModels("DOE"))
//	fmt.Println(res.ExitCode, res.Cycles["DOE"])
//
// Runs are configured with functional options (see options.go), are
// cancellable through the context, and classify failures with the
// typed sentinel errors of errors.go. Batches of independent
// simulations run concurrently through a Pool (see pool.go):
//
//	pool := kahrisma.NewPool(0) // GOMAXPROCS workers
//	defer pool.Close()
//	job := pool.Submit(ctx, exe, kahrisma.WithModels("DOE"))
//	res, _ = job.Wait()
//
// The simulation-as-a-service layer (internal/server, cmd/kservd)
// exposes the same pipeline over HTTP with artifact caching, admission
// control and metrics (docs/server.md).
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// reproduction of every table and figure of the paper, and
// docs/simpool.md for the concurrency model.
package kahrisma

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"time"

	"repro/internal/adl"
	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/cycle"
	"repro/internal/driver"
	"repro/internal/isa"
	"repro/internal/isasel"
	"repro/internal/kelf"
	"repro/internal/mem"
	"repro/internal/prof"
	"repro/internal/prof/span"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/targetgen"
	"repro/internal/trace"
)

// System is an elaborated KAHRISMA architecture (register table plus
// the per-ISA operation tables generated from the ADL description).
type System struct {
	model *isa.Model
}

// New elaborates the built-in KAHRISMA ADL description.
func New() (*System, error) {
	m, err := targetgen.Kahrisma()
	if err != nil {
		return nil, err
	}
	return &System{model: m}, nil
}

// NewFromADL elaborates a custom ADL description (see docs/adl.md for
// the language): the whole toolchain retargets to it, as long as the
// operations keep the semantic keys of the built-in simulation function
// registry. Typical customizations are different issue widths,
// latencies, encodings and register aliases.
func NewFromADL(text string) (*System, error) {
	doc, err := adl.Parse(text)
	if err != nil {
		return nil, err
	}
	m, err := targetgen.Elaborate(doc)
	if err != nil {
		return nil, err
	}
	return &System{model: m}, nil
}

// ADL returns the built-in KAHRISMA ADL description text — a starting
// point for custom architectures.
func ADL() string { return adl.Kahrisma }

// ISAs lists the instruction set architectures the fabric can
// instantiate (RISC and the n-issue VLIW formats), in ADL order.
func (s *System) ISAs() []string {
	out := make([]string, len(s.model.ISAs))
	for i, a := range s.model.ISAs {
		out[i] = a.Name
	}
	return out
}

// IssueWidth returns the number of parallel operation slots of an ISA.
// Unknown names return an error wrapping ErrBadISA.
func (s *System) IssueWidth(isaName string) (int, error) {
	a := s.model.ISAByName(isaName)
	if a == nil {
		return 0, fmt.Errorf("%w: %q", ErrBadISA, isaName)
	}
	return a.Issue, nil
}

// Executable is a linked, loadable program.
type Executable struct {
	sys  *System
	file *kelf.File
	prog *sim.Program
}

// BuildC compiles MiniC sources for the named target ISA and links them
// (with startup code and the emulated C library stubs) into an
// executable. Functions carrying an __isa attribute are compiled for
// that ISA with SWITCHTARGET pairs at cross-ISA call sites.
func (s *System) BuildC(isaName string, files map[string]string) (*Executable, error) {
	return s.BuildCCtx(context.Background(), isaName, files)
}

// BuildCCtx is BuildC with a context: when the context carries a span
// tracer (internal/prof/span), the toolchain stages emit timed spans —
// the pipeline attribution the service layer threads through requests.
func (s *System) BuildCCtx(ctx context.Context, isaName string, files map[string]string) (*Executable, error) {
	var srcs []driver.Source
	for name, text := range files {
		srcs = append(srcs, driver.CSource(name, text))
	}
	return s.build(ctx, isaName, srcs)
}

// BuildAsm assembles and links assembly sources.
func (s *System) BuildAsm(isaName string, files map[string]string) (*Executable, error) {
	return s.BuildAsmCtx(context.Background(), isaName, files)
}

// BuildAsmCtx is BuildAsm with span tracing (see BuildCCtx).
func (s *System) BuildAsmCtx(ctx context.Context, isaName string, files map[string]string) (*Executable, error) {
	var srcs []driver.Source
	for name, text := range files {
		srcs = append(srcs, driver.AsmSource(name, text))
	}
	return s.build(ctx, isaName, srcs)
}

func (s *System) build(ctx context.Context, isaName string, srcs []driver.Source) (*Executable, error) {
	if s.model.ISAByName(isaName) == nil {
		return nil, fmt.Errorf("%w: %q", ErrBadISA, isaName)
	}
	exe, err := driver.BuildCtx(ctx, s.model, isaName, srcs...)
	if err != nil {
		return nil, err
	}
	prog, err := sim.LoadProgram(exe)
	if err != nil {
		return nil, err
	}
	return &Executable{sys: s, file: exe, prog: prog}, nil
}

// BuildCMixed compiles MiniC sources with an explicit per-function ISA
// assignment: functions named in funcISA target that ISA (as if the
// source carried an __isa attribute; an explicit attribute wins),
// everything else targets isaName. This is the build path AutoTune's
// choices and campaign AutoISA points rebuild through.
func (s *System) BuildCMixed(isaName string, funcISA map[string]string, files map[string]string) (*Executable, error) {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	srcs := make([]driver.Source, len(names))
	for i, name := range names {
		srcs[i] = driver.CSource(name, files[name])
	}
	return s.buildMixed(context.Background(), isaName, funcISA, srcs)
}

// buildMixed is the ordered-source mixed-ISA build: deterministic for a
// given source slice, unlike the map-fed public wrappers.
func (s *System) buildMixed(ctx context.Context, isaName string, funcISA map[string]string, srcs []driver.Source) (*Executable, error) {
	if s.model.ISAByName(isaName) == nil {
		return nil, fmt.Errorf("%w: %q", ErrBadISA, isaName)
	}
	for fn, name := range funcISA {
		if s.model.ISAByName(name) == nil {
			return nil, fmt.Errorf("%w: %q (function %s)", ErrBadISA, name, fn)
		}
	}
	f, err := driver.BuildOptsCtx(ctx, s.model, cc.Options{ISA: isaName, FunctionISA: funcISA}, srcs...)
	if err != nil {
		return nil, err
	}
	prog, err := sim.LoadProgram(f)
	if err != nil {
		return nil, err
	}
	return &Executable{sys: s, file: f, prog: prog}, nil
}

// LoadExecutable reads a linked ELF executable produced by the tools.
func (s *System) LoadExecutable(data []byte) (*Executable, error) {
	f, err := kelf.Decode(data)
	if err != nil {
		return nil, err
	}
	prog, err := sim.LoadProgram(f)
	if err != nil {
		return nil, err
	}
	return &Executable{sys: s, file: f, prog: prog}, nil
}

// Bytes serializes the executable as ELF.
func (e *Executable) Bytes() ([]byte, error) { return e.file.Encode() }

// Disassemble renders the text section, choosing the ISA per function.
func (e *Executable) Disassemble() []string {
	text := e.file.Section(kelf.SecText)
	fallback := e.sys.model.ISAByID(e.prog.EntryISA)
	return asm.Listing(e.sys.model, e.prog.Funcs, fallback, text.Data, text.Addr)
}

// Location maps an instruction address to function, source line and
// assembly line (the simulator's debug mapping, Sec. V-C).
func (e *Executable) Location(addr uint32) string { return e.prog.Location(addr) }

// MemoryConfig selects the memory-delay hierarchy for a run.
type MemoryConfig struct {
	// Spec, when non-empty, builds a custom hierarchy from its textual
	// description, e.g. "limit:1|cache:2K,4,32,3|mem:18" (see
	// mem.ParseSpec). Takes precedence over Flat.
	Spec string
	// Flat uses a fixed-delay memory of FlatDelay cycles instead of the
	// paper's L1/L2/DRAM hierarchy.
	Flat      bool
	FlatDelay uint64
}

func (mc MemoryConfig) build() (*mem.Hierarchy, error) {
	if mc.Spec != "" {
		return mem.ParseSpec(mc.Spec)
	}
	if mc.Flat {
		return mem.Flat(mc.FlatDelay), nil
	}
	return mem.Paper(), nil
}

// RunResult reports a completed simulation.
type RunResult struct {
	ExitCode     int32
	Output       string // captured stdout when WithStdout was not used
	Instructions uint64
	Operations   uint64

	// Cycles per activated model name; OPC the matching ops/cycle.
	Cycles map[string]uint64
	OPC    map[string]float64

	// L1MissRate of the hierarchy shared by AIE/DOE (NaN-free: zero
	// when no such model ran or a flat memory was used).
	L1MissRate float64

	// Stats are the interpreter's counters (decode cache, prediction,
	// ISA switches).
	Stats sim.Stats

	// FunctionILP is filled when WithPerFunctionILP is set, largest
	// functions first.
	FunctionILP []cycle.FunctionILP

	// Profile is the microarchitectural profile of the run, filled when
	// WithProfiling was set (nil otherwise): per-PC hotspots,
	// decode-cache/prediction counters, per-ISA and per-slot cycle
	// attribution, ISA-switch transitions. See docs/profiling.md.
	Profile *Profile

	// Host-side timing, filled for pool-executed jobs only (zero for
	// direct Run calls): QueueWait is the time the job sat in the pool
	// queue before a worker picked it up; SimWall is the wall-clock
	// time of the simulation itself. Telemetry only — neither feeds
	// back into simulated state.
	QueueWait time.Duration
	SimWall   time.Duration
}

// Run executes the program to completion under ctx. The run is
// configured by functional options and can be interrupted: a canceled
// or expired context stops the interpretation loop within the
// simulator's cancellation granularity and returns an error wrapping
// ErrCanceled.
func (e *Executable) Run(ctx context.Context, opts ...Option) (*RunResult, error) {
	return e.run(ctx, resolveOptions(opts))
}

func (e *Executable) run(ctx context.Context, cfg runConfig) (*RunResult, error) {
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	opts, setup, err := e.prepare(cfg)
	if err != nil {
		if cfg.EventSink != nil {
			cfg.EventSink.Done(trace.Done{Error: err.Error()})
		}
		return nil, err
	}
	cpu, err := sim.New(e.sys.model, e.prog, opts)
	if err != nil {
		if cfg.EventSink != nil {
			cfg.EventSink.Done(trace.Done{Error: err.Error()})
		}
		return nil, err
	}
	setup.attach(cpu)
	st, err := cpu.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return setup.collect(cpu, st), nil
}

// runSetup is the per-run state derived from a resolved configuration:
// the cycle models, the optional RTL pipeline, the shared memory
// hierarchy, the profiler and the capture buffer. It is built once per
// run (for pooled runs: used by exactly one worker) and consumed by
// collect after the CPU halts.
type runSetup struct {
	models   []cycle.Model
	pipe     *rtl.Pipeline
	hier     *mem.Hierarchy
	pf       *cycle.PerFunctionILP
	prof     *prof.Collector
	traceW   *trace.Writer
	captured *bytes.Buffer
}

// prepare validates cfg and builds the simulator options plus the
// per-run observer state.
func (e *Executable) prepare(cfg runConfig) (sim.Options, *runSetup, error) {
	opts := sim.Options{
		DecodeCache:      !cfg.DisableDecodeCache,
		DecodeCacheCap:   cfg.DecodeCacheCap,
		Prediction:       !cfg.DisablePrediction && !cfg.DisableDecodeCache,
		Superblocks:      !cfg.DisableSuperblocks,
		MaxInstructions:  cfg.Fuel,
		Stdin:            cfg.Stdin,
		EventSink:        cfg.EventSink,
		StreamOps:        cfg.EventSink != nil && cfg.StreamOps,
		ProgressInterval: cfg.ProgressInterval,
	}
	if opts.MaxInstructions == 0 {
		opts.MaxInstructions = 2_000_000_000
	}
	setup := &runSetup{}
	if cfg.Stdout != nil {
		opts.Stdout = cfg.Stdout
	} else {
		setup.captured = &bytes.Buffer{}
		opts.Stdout = setup.captured
	}
	var err error
	for _, name := range cfg.Models {
		switch name {
		case "ILP":
			setup.models = append(setup.models, cycle.NewILP(e.sys.model))
		case "AIE":
			if setup.hier == nil {
				if setup.hier, err = cfg.Memory.build(); err != nil {
					return sim.Options{}, nil, err
				}
			}
			setup.models = append(setup.models, cycle.NewAIE(setup.hier))
		case "DOE":
			if setup.hier == nil {
				if setup.hier, err = cfg.Memory.build(); err != nil {
					return sim.Options{}, nil, err
				}
			}
			setup.models = append(setup.models, cycle.NewDOE(e.sys.model, setup.hier))
		case "RTL":
			rc := rtl.DefaultConfig()
			if rc.Hierarchy, err = cfg.Memory.build(); err != nil {
				return sim.Options{}, nil, err
			}
			setup.pipe = rtl.New(e.sys.model, rc)
		default:
			return sim.Options{}, nil, fmt.Errorf("%w: %q", ErrBadModel, name)
		}
	}
	if cfg.PerFunctionILP {
		setup.pf = cycle.NewPerFunctionILP(e.sys.model, e.prog)
	}
	if cfg.Profile {
		setup.prof = prof.NewCollector()
		// Cycle attribution follows the run's first cycle model; purely
		// functional runs profile execution counts only.
		if len(setup.models) > 0 {
			setup.prof.SetCycleSource(setup.models[0], setup.models[0].Name())
		}
		if cfg.ProfileStride > 1 {
			setup.prof.SetSampling(cfg.ProfileStride)
		}
	}
	if cfg.Trace != nil {
		setup.traceW = trace.NewWriter(cfg.Trace)
	}
	return opts, setup, nil
}

// attach wires the per-run observers into a fresh CPU.
func (s *runSetup) attach(cpu *sim.CPU) {
	for _, m := range s.models {
		cpu.Attach(m)
	}
	if s.pipe != nil {
		cpu.Attach(s.pipe)
	}
	if s.pf != nil {
		cpu.Attach(s.pf)
	}
	// The profiler observes after the cycle models so its per-PC cycle
	// deltas see the model state the instruction just produced.
	if s.prof != nil {
		cpu.Attach(s.prof)
	}
	if s.traceW != nil {
		cpu.SetTrace(s.traceW)
	}
}

// collect assembles the RunResult after a successful run.
func (s *runSetup) collect(cpu *sim.CPU, st sim.ExitStatus) *RunResult {
	res := &RunResult{Cycles: map[string]uint64{}, OPC: map[string]float64{}}
	res.ExitCode = st.ExitCode
	res.Instructions = st.Instructions
	res.Operations = cpu.Stats.Operations
	res.Stats = cpu.Stats
	if s.captured != nil {
		res.Output = s.captured.String()
	}
	for _, m := range s.models {
		res.Cycles[m.Name()] = m.Cycles()
		res.OPC[m.Name()] = cycle.OPC(m)
	}
	if s.pipe != nil {
		s.pipe.Drain()
		res.Cycles["RTL"] = s.pipe.Cycles()
		if s.pipe.Cycles() > 0 {
			res.OPC["RTL"] = float64(s.pipe.Ops()) / float64(s.pipe.Cycles())
		}
	}
	if s.hier != nil && s.hier.L1 != nil {
		res.L1MissRate = s.hier.L1.MissRate()
	}
	if s.pf != nil {
		res.FunctionILP = s.pf.Results()
	}
	if s.prof != nil {
		res.Profile = s.prof.Finish(cpu.Stats)
	}
	return res
}

// ---------------------------------------------------------------------
// Profiling (docs/profiling.md)

// Profile is the mergeable microarchitectural profile of one or more
// runs (see WithProfiling): per-PC execution/cycle/stall histograms,
// decode-cache and instruction-prediction counters, per-ISA and
// per-VLIW-slot attribution, and ISA-switch transitions. Profiles of
// independent runs (e.g. per pool worker) fold together with Merge —
// the result is deterministic regardless of completion order.
type Profile = prof.Profile

// ProfileReport is the symbolized JSON rendering of a Profile.
type ProfileReport = prof.Report

// ProfileHotspot is one row of a report's per-PC hotspot table.
type ProfileHotspot = prof.Hotspot

// ProfileReportDiff is the comparison of two profile reports: total,
// per-ISA and per-PC deltas, B minus A (see `kprof -diff` and campaign
// Pareto-pair deltas).
type ProfileReportDiff = prof.ReportDiff

// DiffProfileReports compares two symbolized reports; the per-PC table
// is ranked by absolute cycle movement and truncated to topN rows
// (<= 0: all). Either side may be nil (an empty profile).
func DiffProfileReports(a, b *ProfileReport, topN int) *ProfileReportDiff {
	return prof.DiffReports(a, b, topN)
}

// MergeProfiles combines profiles into a fresh one (nil entries are
// skipped); merging is commutative, so batch results merge
// deterministically regardless of worker count or scheduling.
func MergeProfiles(profiles ...*Profile) *Profile { return prof.Merge(profiles...) }

// ProfileSymbols returns a symbolizer over the executable's function
// table and C source line map — the debug sections the profiler's
// reports and pprof export key hotspots by.
func (e *Executable) ProfileSymbols() prof.Symbolizer {
	return prof.NewSymbols(e.prog.Funcs, e.prog.SrcMap)
}

// ProfileReport renders p symbolized against this executable: the topN
// hottest PCs (<= 0: all) plus every aggregate table.
func (e *Executable) ProfileReport(p *Profile, topN int) *ProfileReport {
	return p.Report(e.ProfileSymbols(), topN)
}

// WriteProfilePprof writes p as a gzipped pprof profile.proto stream
// symbolized against this executable, renderable with
// `go tool pprof` (guest flamegraphs keyed by guest functions).
func (e *Executable) WriteProfilePprof(w io.Writer, p *Profile) error {
	return prof.WritePprof(w, p, e.ProfileSymbols())
}

// NewSpanTracer builds a pipeline span tracer logging to the given
// slog logger (nil: slog.Default()); install it on a context with
// WithSpanTracing and the toolchain stages below that context —
// compile, assemble, link — emit timed spans (docs/profiling.md).
func NewSpanTracer(log *slog.Logger) *span.Tracer { return span.NewTracer(log) }

// WithSpanTracing returns a context carrying tracer under a fresh root
// trace id; pass it to BuildCCtx/BuildAsmCtx (or anything that accepts
// a context above the toolchain) to time the pipeline stages.
func WithSpanTracing(ctx context.Context, tracer *span.Tracer) context.Context {
	return span.NewContext(ctx, tracer)
}

// ---------------------------------------------------------------------
// Live event streaming (docs/streaming.md)

// EventSink consumes a running simulation's live events (see
// WithEventSink): per-operation trace events (with WithTraceStreaming),
// ISA switches, progress snapshots and the terminal done event.
type EventSink = sim.EventSink

// Streamer is the canonical EventSink: a bounded, sequence-numbered
// event ring with multi-subscriber fan-out and drop-oldest overflow,
// so a slow consumer can never stall the simulation. Build with
// NewStreamer, consume with Subscribe/Next.
type Streamer = trace.Streamer

// StreamSubscription is one reader's cursor into a Streamer.
type StreamSubscription = trace.Subscription

// StreamEvent is one element of a live event stream; its Type is one
// of the StreamEvent* constants and selects the payload field.
type StreamEvent = trace.StreamEvent

// Stream event payloads.
type (
	ProgressEvent  = trace.Progress
	ISASwitchEvent = trace.SwitchInfo
	DoneEvent      = trace.Done
)

// Stream event types (StreamEvent.Type).
const (
	StreamEventOp               = trace.EventOp
	StreamEventISASwitch        = trace.EventISASwitch
	StreamEventProgress         = trace.EventProgress
	StreamEventCampaignProgress = trace.EventCampaignProgress
	StreamEventDone             = trace.EventDone
)

// NewStreamer builds a bounded live-event ring holding capacity events;
// capacity <= 0 selects the default (trace.DefaultRingSize). Pass it to
// WithEventSink and read it concurrently:
//
//	st := kahrisma.NewStreamer(0)
//	sub := st.Subscribe(0)
//	go exe.Run(ctx, kahrisma.WithEventSink(st))
//	for {
//	    batch, missed, _ := sub.Next(ctx)
//	    if batch == nil { break } // stream closed
//	    ...
//	}
func NewStreamer(capacity int) *Streamer { return trace.NewStreamer(capacity) }

// RecommendISA suggests the narrowest instance covering the given
// theoretical ILP (utilization in (0,1], 0 selects the default 0.7).
func (s *System) RecommendISA(ilp, utilization float64) string {
	return cycle.Recommend(s.model, ilp, utilization).Name
}

// AutoTuneResult re-exports the automatic ISA selection outcome.
type AutoTuneResult = isasel.Result

// AutoTuneOptions re-exports the selection options.
type AutoTuneOptions = isasel.Options

// AutoTune performs the paper's envisioned automatic per-function ISA
// selection (Sec. I / future work in Sec. VIII): profile once on the
// base instance, pick an instance per hot function from its theoretical
// ILP weighed against the fabric's reconfiguration cost, rebuild the
// program mixed-ISA, and report baseline-vs-tuned DOE cycles with the
// reconfiguration bill included.
func (s *System) AutoTune(opts AutoTuneOptions, files map[string]string) (*AutoTuneResult, error) {
	var srcs []driver.Source
	for name, text := range files {
		srcs = append(srcs, driver.CSource(name, text))
	}
	return isasel.AutoTune(s.model, opts, srcs...)
}
