package kahrisma_test

import (
	"context"
	"testing"
	"time"

	kahrisma "repro"
)

// A mixed-ISA workload long enough to cross several progress intervals:
// main runs RISC, the kernel runs VLIW4 via SWITCHTARGET pairs.
const streamProg = `
__isa(VLIW4) int kernel(int a, int b) {
    int s = 0;
    for (int i = 0; i < 200; i++) s += a * i - b;
    return s;
}
int main() {
    int acc = 0;
    for (int i = 0; i < 20; i++) acc += kernel(i, 3);
    return acc & 0x7F;
}
`

// collect drains every event from the stream until it closes.
func collect(t *testing.T, sub *kahrisma.StreamSubscription) []kahrisma.StreamEvent {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var all []kahrisma.StreamEvent
	for {
		batch, _, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if batch == nil {
			return all
		}
		all = append(all, batch...)
	}
}

// Streaming is observability, not simulation: a streamed run must
// produce bit-identical results to the plain run, while subscribers see
// ops, ISA switches, progress snapshots and a terminal done event.
func TestStreamedRunMatchesPlainRun(t *testing.T) {
	sys := newSys(t)
	exe, err := sys.BuildC("RISC", map[string]string{"p.c": streamProg})
	if err != nil {
		t.Fatal(err)
	}

	plain, err := exe.Run(context.Background(), kahrisma.WithModels("ILP", "DOE"))
	if err != nil {
		t.Fatal(err)
	}

	streamer := kahrisma.NewStreamer(0)
	sub := streamer.Subscribe(0)
	streamed, err := exe.Run(context.Background(),
		kahrisma.WithModels("ILP", "DOE"),
		kahrisma.WithEventSink(streamer),
		kahrisma.WithTraceStreaming(),
		kahrisma.WithProgressInterval(1000))
	if err != nil {
		t.Fatal(err)
	}

	// Bit-identical accounting across the two runs.
	if streamed.ExitCode != plain.ExitCode ||
		streamed.Instructions != plain.Instructions ||
		streamed.Operations != plain.Operations {
		t.Errorf("streamed run diverged: exit %d/%d instr %d/%d ops %d/%d",
			streamed.ExitCode, plain.ExitCode,
			streamed.Instructions, plain.Instructions,
			streamed.Operations, plain.Operations)
	}
	for m, c := range plain.Cycles {
		if streamed.Cycles[m] != c {
			t.Errorf("model %s cycles = %d streamed, %d plain", m, streamed.Cycles[m], c)
		}
	}

	events := collect(t, sub)
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	var ops, switches, progress, done int
	var lastSeq uint64
	for i, ev := range events {
		if i > 0 && ev.Seq <= lastSeq {
			t.Fatalf("event %d out of order: seq %d after %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case kahrisma.StreamEventOp:
			ops++
		case kahrisma.StreamEventISASwitch:
			switches++
			if ev.ISASwitch.From == ev.ISASwitch.To {
				t.Errorf("self-switch event: %+v", ev.ISASwitch)
			}
		case kahrisma.StreamEventProgress:
			progress++
		case kahrisma.StreamEventDone:
			done++
			if i != len(events)-1 {
				t.Errorf("done event at index %d of %d", i, len(events))
			}
			if ev.Done.ExitCode != plain.ExitCode || ev.Done.Instructions != plain.Instructions {
				t.Errorf("done = %+v, want exit %d after %d instructions",
					ev.Done, plain.ExitCode, plain.Instructions)
			}
		}
	}
	if ops == 0 {
		t.Error("no op events despite WithTraceStreaming")
	}
	if switches < 2 {
		t.Errorf("ISA switches streamed = %d, want >= 2 (RISC<->VLIW4 round trips)", switches)
	}
	if progress == 0 {
		t.Error("no progress events at interval 1000")
	}
	if done != 1 {
		t.Errorf("done events = %d, want exactly 1", done)
	}

	// The per-job footprint is the ring, regardless of how many events
	// the run published.
	if streamer.Len() > streamer.Cap() {
		t.Errorf("ring holds %d events, capacity %d", streamer.Len(), streamer.Cap())
	}
	if streamer.Seq() < uint64(streamer.Cap()) {
		t.Errorf("only %d events published; workload too small to exercise eviction", streamer.Seq())
	}
}

// Without WithTraceStreaming the sink still gets the cheap events —
// progress, ISA switches and done — but no per-op firehose.
func TestStreamWithoutOpsIsCheapEvents(t *testing.T) {
	sys := newSys(t)
	exe, err := sys.BuildC("RISC", map[string]string{"p.c": streamProg})
	if err != nil {
		t.Fatal(err)
	}
	streamer := kahrisma.NewStreamer(0)
	sub := streamer.Subscribe(0)
	if _, err := exe.Run(context.Background(),
		kahrisma.WithEventSink(streamer),
		kahrisma.WithProgressInterval(5000)); err != nil {
		t.Fatal(err)
	}
	events := collect(t, sub)
	var progress, done bool
	for _, ev := range events {
		switch ev.Type {
		case kahrisma.StreamEventOp:
			t.Fatalf("op event streamed without WithTraceStreaming: %+v", ev)
		case kahrisma.StreamEventProgress:
			progress = true
			if ev.Progress.ISA == "" || ev.Progress.Instructions == 0 {
				t.Errorf("empty progress snapshot: %+v", ev.Progress)
			}
		case kahrisma.StreamEventDone:
			done = true
		}
	}
	if !progress || !done {
		t.Errorf("progress=%v done=%v, want both", progress, done)
	}
}

// A run that fails before the simulator starts still closes the stream
// with a terminal done event carrying the error.
func TestStreamDoneOnPrepareError(t *testing.T) {
	sys := newSys(t)
	exe, err := sys.BuildC("RISC", map[string]string{"p.c": streamProg})
	if err != nil {
		t.Fatal(err)
	}
	streamer := kahrisma.NewStreamer(8)
	sub := streamer.Subscribe(0)
	if _, err := exe.Run(context.Background(),
		kahrisma.WithModels("BOGUS"),
		kahrisma.WithEventSink(streamer)); err == nil {
		t.Fatal("bogus model accepted")
	}
	events := collect(t, sub)
	if len(events) != 1 || events[0].Type != kahrisma.StreamEventDone || events[0].Done.Error == "" {
		t.Fatalf("events after failed run = %+v, want one done event with an error", events)
	}
	if !streamer.Closed() {
		t.Error("streamer left open after failed run")
	}
}
