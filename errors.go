package kahrisma

import (
	"errors"

	"repro/internal/sim"
	"repro/internal/simpool"
)

// Typed sentinel errors. Every error returned by the facade wraps one
// of these (or an underlying toolchain error), so callers classify
// failures with errors.Is instead of matching message text:
//
//	res, err := exe.Run(ctx, kahrisma.WithFuel(1e6))
//	switch {
//	case errors.Is(err, kahrisma.ErrFuelExhausted): // ran out of fuel
//	case errors.Is(err, kahrisma.ErrCanceled):      // ctx canceled / timed out
//	}
var (
	// ErrFuelExhausted reports that the instruction budget (WithFuel,
	// or the default limit) was reached before the program halted.
	ErrFuelExhausted = sim.ErrFuelExhausted
	// ErrCanceled reports that the run was aborted by its context. The
	// chain also carries the context's own error, so
	// errors.Is(err, context.DeadlineExceeded) identifies timeouts.
	ErrCanceled = sim.ErrCanceled
	// ErrBadISA reports a processor-instance name the elaborated
	// architecture does not define.
	ErrBadISA = errors.New("kahrisma: unknown ISA")
	// ErrBadModel reports a cycle-model name outside ILP/AIE/DOE/RTL.
	ErrBadModel = errors.New("kahrisma: unknown cycle model")
	// ErrPoolClosed reports a Pool.Submit/SubmitBatch after Close: the
	// returned Job fails fast on Wait with an error wrapping this
	// sentinel instead of panicking or hanging.
	ErrPoolClosed = simpool.ErrClosed
)
