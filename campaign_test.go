package kahrisma_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	kahrisma "repro"
	"repro/internal/experiments"
)

// campaignSpec24 is the acceptance-criteria grid: 4 ISAs x 3 memory
// hierarchies x 2 fuel budgets over one program = 24 unique points,
// plus a duplicate ISA entry that dedup collapses (grid 30).
func campaignSpec24() kahrisma.CampaignSpec {
	return kahrisma.CampaignSpec{
		Name:    "e2e",
		Sources: map[string]string{"p.c": facadeProg},
		ISAs:    []string{"RISC", "VLIW2", "VLIW4", "VLIW8", "RISC"},
		Memories: []string{
			"paper",
			"limit:1|cache:1K,2,16,3|mem:18",
			"limit:1|cache:4K,4,32,3|mem:18",
		},
		Fuels:  []uint64{0, 500_000},
		Models: []string{"DOE"},
		Wave:   6,
	}
}

func TestCampaignEndToEnd(t *testing.T) {
	sys := newSys(t)
	pool := kahrisma.NewPool(4)
	defer pool.Close()

	spec := campaignSpec24()
	c, err := pool.RunCampaign(context.Background(), sys, spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.GridSize() != 30 || c.Len() != 24 {
		t.Fatalf("grid/unique = %d/%d, want 30/24", c.GridSize(), c.Len())
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.Done != 24 || st.Failed != 0 || st.Simulated != 24 || !st.Finished {
		t.Fatalf("status: %+v", st)
	}
	rep := c.Report()
	if rep == nil || rep.Succeeded != 24 || rep.Deduped != 6 {
		t.Fatalf("report: %+v", rep)
	}
	// The ranking is by DOE cycles; the widest paper-memory point must
	// beat the narrowest on cycles (that is the paper's whole point).
	cycles := map[string]uint64{}
	var paretoCount int
	for _, row := range rep.Rows {
		cycles[row.Label] = row.PrimaryCycles
		if row.Pareto {
			paretoCount++
		}
		if row.Rank == 1 && row.PrimaryCycles == 0 {
			t.Fatalf("rank-1 row has no cycles: %+v", row)
		}
	}
	if cycles["inline/VLIW8"] >= cycles["inline/RISC"] {
		t.Fatalf("VLIW8 (%d) not faster than RISC (%d)", cycles["inline/VLIW8"], cycles["inline/RISC"])
	}
	if paretoCount == 0 {
		t.Fatal("no Pareto-frontier rows")
	}
	// The small-cache RISC point has the minimal issue width and cache
	// budget, so it is non-dominated regardless of its cycle count.
	for _, row := range rep.Rows {
		if row.Label == "inline/RISC/mem=limit:1|cache:1K,2,16,3|mem:18" && !row.Pareto {
			t.Fatalf("min-budget row dominated: %+v", row)
		}
	}
}

func TestCampaignDedupCacheAndDeterminism(t *testing.T) {
	sys := newSys(t)
	pool := kahrisma.NewPool(4)
	defer pool.Close()
	cache := kahrisma.NewCampaignCache(0)

	spec := kahrisma.CampaignSpec{
		Name:     "dedup",
		Sources:  map[string]string{"p.c": facadeProg},
		ISAs:     []string{"RISC", "VLIW4", "RISC"}, // grid 6, unique 4
		Memories: []string{"", "paper"},             // alias pair collapses
	}
	run1, err := pool.RunCampaign(context.Background(), sys, spec, kahrisma.WithCampaignCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if err := run1.Wait(); err != nil {
		t.Fatal(err)
	}
	st1 := run1.Status()
	if run1.GridSize() != 6 || run1.Len() != 2 {
		t.Fatalf("grid/unique = %d/%d, want 6/2", run1.GridSize(), run1.Len())
	}
	if st1.Simulated != 2 || st1.CacheHits != 0 {
		t.Fatalf("first run: %+v", st1)
	}

	// Same campaign again: every point is a cache hit, nothing
	// simulates, and the ranked report is byte-identical.
	run2, err := pool.RunCampaign(context.Background(), sys, spec, kahrisma.WithCampaignCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if err := run2.Wait(); err != nil {
		t.Fatal(err)
	}
	st2 := run2.Status()
	if st2.Simulated != 0 || st2.CacheHits != 2 {
		t.Fatalf("second run: %+v", st2)
	}
	cs := cache.Stats()
	if cs.Hits != 2 || cs.Misses != 2 {
		t.Fatalf("cache stats: %+v", cs)
	}
	rep1, err := json.Marshal(run1.Report())
	if err != nil {
		t.Fatal(err)
	}
	rep2, _ := json.Marshal(run2.Report())
	if string(rep1) != string(rep2) {
		t.Fatalf("reports differ:\n%s\n%s", rep1, rep2)
	}
	for _, ps := range run2.Points() {
		if !ps.CacheHit {
			t.Fatalf("point not cache-served on rerun: %+v", ps)
		}
	}
}

func TestCampaignCancelKeepsCompletedPoints(t *testing.T) {
	sys := newSys(t)
	pool := kahrisma.NewPool(2)
	defer pool.Close()

	spec := kahrisma.CampaignSpec{
		Name:    "cancel",
		Sources: map[string]string{"p.c": facadeProg},
		ISAs:    []string{"RISC", "VLIW2", "VLIW4", "VLIW6", "VLIW8"},
		Wave:    1,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c, err := pool.RunCampaign(ctx, sys, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel once the first point is terminal; waves after the
	// in-flight one never start.
	deadline := time.Now().Add(30 * time.Second)
	for c.Status().Done < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("first point never completed: %+v", c.Status())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := c.Wait(); err == nil {
		t.Fatal("expected cancellation error")
	} else if !errors.Is(err, context.Canceled) && c.Status().Done < c.Len() {
		// The context error surfaces either directly (wave never
		// started) or as the in-flight point's failure.
		t.Logf("cancel surfaced as point failure: %v", err)
	}
	st := c.Status()
	if st.Done < 1 {
		t.Fatalf("no completed points after cancel: %+v", st)
	}
	// Completed points stay fetchable: statuses and outcomes survive.
	var fetched int
	for i, out := range c.Outcomes() {
		if out != nil && out.Err == "" {
			fetched++
			if out.Cycles["DOE"] == 0 {
				t.Fatalf("outcome %d has no cycles: %+v", i, out)
			}
		}
	}
	if fetched < 1 {
		t.Fatal("no fetchable outcomes after cancel")
	}
	if rep := c.Report(); rep == nil || rep.Succeeded != fetched {
		t.Fatalf("report after cancel: %+v", rep)
	}
}

func TestCampaignAutoISAPoint(t *testing.T) {
	sys := newSys(t)
	pool := kahrisma.NewPool(2)
	defer pool.Close()

	spec := kahrisma.CampaignSpec{
		Name:    "auto",
		Sources: map[string]string{"p.c": facadeProg},
		ISAs:    []string{"RISC", kahrisma.CampaignAutoISA},
	}
	c, err := pool.RunCampaign(context.Background(), sys, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	var auto *kahrisma.CampaignOutcome
	for _, out := range c.Outcomes() {
		if out != nil && out.Label == "inline/auto" {
			auto = out
		}
	}
	if auto == nil || auto.Err != "" {
		t.Fatalf("auto outcome: %+v", auto)
	}
	if auto.ResolvedISA == "" || auto.Cycles["DOE"] == 0 {
		t.Fatalf("auto point not resolved: %+v", auto)
	}
	if auto.IssueWidth < 1 {
		t.Fatalf("auto issue width: %d", auto.IssueWidth)
	}
}

func TestCampaignProfileDeltas(t *testing.T) {
	sys := newSys(t)
	pool := kahrisma.NewPool(2)
	defer pool.Close()

	spec := kahrisma.CampaignSpec{
		Name:    "profiled",
		Sources: map[string]string{"p.c": facadeProg},
		ISAs:    []string{"RISC", "VLIW4"},
		Profile: true,
	}
	c, err := pool.RunCampaign(context.Background(), sys, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	for _, out := range c.Outcomes() {
		if out.Profile == nil {
			t.Fatalf("point %s missing profile report", out.Label)
		}
	}
	if len(rep.Deltas) == 0 {
		t.Skip("both points dominated into a single-row frontier; no pair to diff")
	}
	d := rep.Deltas[0]
	if d.Diff == nil || d.Diff.CyclesA == d.Diff.CyclesB {
		t.Fatalf("degenerate pareto delta: %+v", d)
	}
}

func TestCampaignRejectsBadSpecs(t *testing.T) {
	sys := newSys(t)
	pool := kahrisma.NewPool(1)
	defer pool.Close()
	cases := []kahrisma.CampaignSpec{
		{Sources: map[string]string{"p.c": facadeProg}, ISAs: []string{"NOPE"}},
		{Sources: map[string]string{"p.c": facadeProg}},
		{ISAs: []string{"RISC"}},
	}
	for i, spec := range cases {
		if _, err := pool.RunCampaign(context.Background(), sys, spec); err == nil {
			t.Errorf("case %d: bad spec accepted", i)
		}
	}
}

// The canned Figure-4 spec measures the same design space as the
// internal/experiments VLIW sweep: same ISA list, every workload.
func TestFigure4CampaignMatchesExperiments(t *testing.T) {
	spec := kahrisma.Figure4Campaign()
	if len(spec.ISAs) != len(experiments.VLIWNames) {
		t.Fatalf("ISA axis: %v vs %v", spec.ISAs, experiments.VLIWNames)
	}
	for i, name := range experiments.VLIWNames {
		if spec.ISAs[i] != name {
			t.Fatalf("ISA axis: %v vs %v", spec.ISAs, experiments.VLIWNames)
		}
	}
	if len(spec.Workloads) != 6 {
		t.Fatalf("workload axis: %v", spec.Workloads)
	}
	if spec.GridSize() != 30 {
		t.Fatalf("grid = %d", spec.GridSize())
	}
}

// Preflight lints every unique build before simulating: points whose
// executable carries error-severity findings fail with a preflight
// error and never reach the pool, while clean builds run normally.
func TestCampaignPreflight(t *testing.T) {
	sys := newSys(t)
	pool := kahrisma.NewPool(2)
	defer pool.Close()

	badAsm := `
	.global main
	.func main
main:
	.word 0xFFFFFFFF
	ret
	.endfunc
`
	bad := kahrisma.CampaignSpec{
		Name:      "preflight-bad",
		Sources:   map[string]string{"main.s": badAsm},
		Lang:      "asm",
		ISAs:      []string{"RISC"},
		Fuels:     []uint64{0, 1000},
		Preflight: true,
	}
	c, err := pool.RunCampaign(context.Background(), sys, bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err == nil {
		t.Fatal("campaign over a KB001-seeded program passed preflight")
	}
	st := c.Status()
	if st.Failed != 2 {
		t.Fatalf("status: %+v, want both points failed", st)
	}
	for _, out := range c.Outcomes() {
		if out == nil || !strings.Contains(out.Err, "preflight:") {
			t.Fatalf("outcome %+v, want a preflight error", out)
		}
	}

	clean := kahrisma.CampaignSpec{
		Name:      "preflight-clean",
		Sources:   map[string]string{"p.c": facadeProg},
		ISAs:      []string{"RISC", "VLIW4"},
		Preflight: true,
	}
	c, err = pool.RunCampaign(context.Background(), sys, clean)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("clean campaign failed preflight: %v", err)
	}
	if st := c.Status(); st.Done != 2 || st.Failed != 0 {
		t.Fatalf("clean status: %+v", st)
	}
}
