package kahrisma

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/driver"
	"repro/internal/isasel"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------
// Design-space-exploration campaigns (docs/campaigns.md)

// CampaignSpec declares a parameter grid — programs x ISAs x memory
// hierarchies x fuel budgets — whose cross product RunCampaign expands,
// dedups, simulates in bounded waves and ranks (internal/campaign).
type CampaignSpec = campaign.Spec

// CampaignReport is the deterministic Pareto-ranked synthesis of a
// finished campaign.
type CampaignReport = campaign.Report

// CampaignRow is one ranked report row.
type CampaignRow = campaign.Row

// CampaignOutcome is one point's terminal result.
type CampaignOutcome = campaign.Outcome

// CampaignPointStatus is one point's live status.
type CampaignPointStatus = campaign.PointStatus

// CampaignStatus is the aggregate snapshot of a campaign.
type CampaignStatus = campaign.Status

// CampaignCache is the fingerprint-keyed result cache campaigns consult
// before simulating; a Pool shares one across its campaigns.
type CampaignCache = campaign.Cache

// CampaignProgressEvent is the aggregate SSE payload of a running
// campaign (StreamEventCampaignProgress).
type CampaignProgressEvent = trace.CampaignProgress

// CampaignAutoISA selects automatic per-function ISA assignment
// (System.AutoTune) for a grid's ISA axis.
const CampaignAutoISA = campaign.AutoISA

// CampaignDefaultWave is the in-flight point bound selected when a
// spec leaves Wave unset.
const CampaignDefaultWave = campaign.DefaultWave

// NewCampaignCache builds a standalone result cache (capacity <= 0
// selects the default); pass it via WithCampaignCache to share results
// across pools or pin a private cache in tests.
func NewCampaignCache(capacity int) *CampaignCache { return campaign.NewCache(capacity) }

// Figure4Campaign is the canned spec reproducing the paper's Figure 4
// sweep: every built-in workload across RISC..VLIW8.
func Figure4Campaign() CampaignSpec { return campaign.Figure4Spec() }

// Campaign is the handle to a running (or finished) campaign.
type Campaign struct {
	run *campaign.Run
}

// Wait blocks until the campaign is terminal and returns its error:
// the cancellation error when cut short, otherwise the first failed
// point's error, otherwise nil.
func (c *Campaign) Wait() error { return c.run.Wait() }

// Done returns a channel closed when the campaign is terminal.
func (c *Campaign) Done() <-chan struct{} { return c.run.Done() }

// Err returns the campaign's error; valid once Done is closed.
func (c *Campaign) Err() error { return c.run.Err() }

// Status snapshots the aggregate counters (including cache hits and
// simulated-point counts, which are execution facts and deliberately
// not part of the deterministic Report).
func (c *Campaign) Status() CampaignStatus { return c.run.Status() }

// Points snapshots every point's status in point order; completed
// points stay fetchable after cancellation.
func (c *Campaign) Points() []CampaignPointStatus { return c.run.Points() }

// Outcomes returns terminal outcomes in point order (nil for points
// that never ran).
func (c *Campaign) Outcomes() []*CampaignOutcome { return c.run.Outcomes() }

// Report returns the Pareto-ranked report, or nil while the campaign
// is still running. Identical specs over identical programs marshal to
// identical bytes, run after run.
func (c *Campaign) Report() *CampaignReport { return c.run.Report() }

// GridSize returns the pre-dedup grid size; Len the unique points.
func (c *Campaign) GridSize() int { return c.run.GridSize() }
func (c *Campaign) Len() int      { return c.run.Len() }

// CampaignOption configures RunCampaign.
type CampaignOption func(*campaignConfig)

type campaignConfig struct {
	stream  *Streamer
	cache   *CampaignCache
	timeout time.Duration
	acquire func(ctx context.Context, n int) error
	release func(n int)
}

// WithCampaignEvents streams aggregate CampaignProgress snapshots and
// the terminal Done event to st (the same Streamer/SSE path jobs use).
func WithCampaignEvents(st *Streamer) CampaignOption {
	return func(c *campaignConfig) { c.stream = st }
}

// WithCampaignCache overrides the pool's shared result cache.
func WithCampaignCache(cache *CampaignCache) CampaignOption {
	return func(c *campaignConfig) { c.cache = cache }
}

// WithCampaignTimeout bounds each point's wall-clock time (on top of
// the spec's own TimeoutMS; the smaller bound wins).
func WithCampaignTimeout(d time.Duration) CampaignOption {
	return func(c *campaignConfig) { c.timeout = d }
}

// WithCampaignWaveGate brackets every wave with the serving layer's
// admission accounting: acquire is called with the wave size before
// submission and release after the wave completes, so a large campaign
// holds at most one wave's worth of queue slots at a time. A failed
// acquire cancels the campaign's remaining points.
func WithCampaignWaveGate(acquire func(ctx context.Context, n int) error, release func(n int)) CampaignOption {
	return func(c *campaignConfig) { c.acquire, c.release = acquire, release }
}

// RunCampaign expands, dedups and runs spec's grid on the pool and
// returns immediately with the campaign handle. Points whose
// fingerprint key is already in the result cache are served without
// simulation; fresh results are cached for later campaigns on the same
// pool. Cancellation of ctx stops scheduling new waves; completed
// points stay fetchable.
func (p *Pool) RunCampaign(ctx context.Context, sys *System, spec CampaignSpec, opts ...CampaignOption) (*Campaign, error) {
	var cfg campaignConfig
	for _, o := range opts {
		o(&cfg)
	}
	for _, name := range spec.ISAs {
		if name != CampaignAutoISA && sys.model.ISAByName(name) == nil {
			return nil, fmt.Errorf("%w: %q", ErrBadISA, name)
		}
	}
	if cfg.cache == nil {
		cfg.cache = p.campaignCacheShared()
	}
	exec := &campaignExecutor{
		pool:    p,
		sys:     sys,
		timeout: cfg.timeout,
		exes:    map[string]*Executable{},
		tuned:   map[string]*tunedBuild{},
		linted:  map[string]error{},
	}
	run, err := campaign.Start(ctx, spec, campaign.Config{
		Exec:        exec,
		Cache:       cfg.cache,
		Stream:      cfg.stream,
		AcquireWave: cfg.acquire,
		ReleaseWave: cfg.release,
	})
	if err != nil {
		return nil, err
	}
	return &Campaign{run: run}, nil
}

// campaignCacheShared lazily builds the pool's shared result cache.
func (p *Pool) campaignCacheShared() *CampaignCache {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.campaignCache == nil {
		p.campaignCache = campaign.NewCache(0)
	}
	return p.campaignCache
}

// tunedBuild is one cached AutoTune resolution: the mixed-ISA
// executable plus its resolved label and widest issue width.
type tunedBuild struct {
	exe      *Executable
	resolved string
	width    int
	err      error
}

// campaignExecutor runs campaign waves over Pool.SubmitBatch. The
// engine never runs two waves concurrently, so the per-campaign build
// caches need no locking.
type campaignExecutor struct {
	pool    *Pool
	sys     *System
	timeout time.Duration

	// exes caches fixed-ISA executables by build fingerprint; tuned
	// caches AutoTune resolutions by source fingerprint. Both are
	// per-campaign, so one grid never rebuilds a program per memory or
	// fuel variant.
	exes  map[string]*Executable
	tuned map[string]*tunedBuild
	// linted caches preflight verdicts by build fingerprint, so a
	// build shared by many grid variants is linted once per campaign.
	linted map[string]error
}

// preflight lints one point's executable, failing it on error-severity
// findings only: warnings (dead stores, convention hints) are reported
// by klint interactively but do not invalidate a simulation.
func (e *campaignExecutor) preflight(pt *campaign.Point, exe *Executable) error {
	fp := driver.Fingerprint(pt.ISA, pt.Sources...)
	if err, ok := e.linted[fp]; ok {
		return err
	}
	var err error
	if r := exe.Lint(LintOptions{}); r.Errors() > 0 {
		for _, d := range r.Diags {
			if d.Severity == SeverityError {
				err = fmt.Errorf("preflight: %d error-severity finding(s); first: %s", r.Errors(), d.String())
				break
			}
		}
	}
	e.linted[fp] = err
	return err
}

// RunWave builds each point's executable (or reuses the campaign's
// build caches), submits the buildable points as one batch and shapes
// the results into outcomes, index-aligned with pts.
func (e *campaignExecutor) RunWave(ctx context.Context, pts []*campaign.Point) []*campaign.Outcome {
	outs := make([]*campaign.Outcome, len(pts))
	type prepared struct {
		slot     int
		exe      *Executable
		width    int
		resolved string
	}
	var ready []prepared
	var items []BatchItem
	for i, pt := range pts {
		exe, width, resolved, err := e.executableFor(ctx, pt)
		if err != nil {
			outs[i] = &campaign.Outcome{Err: err.Error()}
			continue
		}
		if pt.Preflight {
			if err := e.preflight(pt, exe); err != nil {
				outs[i] = &campaign.Outcome{Err: err.Error()}
				continue
			}
		}
		ready = append(ready, prepared{slot: i, exe: exe, width: width, resolved: resolved})
		items = append(items, BatchItem{Exe: exe, Opts: e.pointOptions(pt)})
	}
	if len(items) == 0 {
		return outs
	}
	batch := e.pool.SubmitBatch(ctx, items)
	for k, job := range batch.Jobs() {
		pr := ready[k]
		pt := pts[pr.slot]
		res, err := job.Wait()
		if err != nil {
			outs[pr.slot] = &campaign.Outcome{Err: err.Error()}
			continue
		}
		out := &campaign.Outcome{
			ExitCode:     res.ExitCode,
			Instructions: res.Instructions,
			Operations:   res.Operations,
			Cycles:       res.Cycles,
			OPC:          res.OPC,
			L1MissRate:   res.L1MissRate,
			IssueWidth:   pr.width,
			ResolvedISA:  pr.resolved,
		}
		if pt.Profile && res.Profile != nil {
			out.Profile = pr.exe.ProfileReport(res.Profile, 32)
		}
		outs[pr.slot] = out
	}
	return outs
}

// pointOptions maps a point's parameters onto run options.
func (e *campaignExecutor) pointOptions(pt *campaign.Point) []Option {
	opts := []Option{WithModels(pt.Models...)}
	if pt.Memory != campaign.PaperMemory {
		opts = append(opts, WithMemorySpec(pt.Memory))
	}
	if pt.Fuel > 0 {
		opts = append(opts, WithFuel(pt.Fuel))
	}
	if pt.Profile {
		opts = append(opts, WithProfiling())
	}
	if e.timeout > 0 {
		opts = append(opts, WithTimeout(e.timeout))
	}
	return opts
}

// executableFor resolves a point's executable through the build caches.
func (e *campaignExecutor) executableFor(ctx context.Context, pt *campaign.Point) (*Executable, int, string, error) {
	if pt.ISA == campaign.AutoISA {
		tb := e.autoFor(ctx, pt)
		return tb.exe, tb.width, tb.resolved, tb.err
	}
	fp := driver.Fingerprint(pt.ISA, pt.Sources...)
	exe := e.exes[fp]
	if exe == nil {
		var err error
		exe, err = e.sys.build(ctx, pt.ISA, pt.Sources)
		if err != nil {
			return nil, 0, "", err
		}
		e.exes[fp] = exe
	}
	width, err := e.sys.IssueWidth(pt.ISA)
	if err != nil {
		return nil, 0, "", err
	}
	return exe, width, "", nil
}

// autoFor resolves an AutoISA point: run the automatic per-function
// selection once per program, rebuild mixed-ISA from the choices and
// cache the result for the program's other grid variants.
func (e *campaignExecutor) autoFor(ctx context.Context, pt *campaign.Point) *tunedBuild {
	fp := driver.Fingerprint("campaign-auto", pt.Sources...)
	if tb := e.tuned[fp]; tb != nil {
		return tb
	}
	tb := &tunedBuild{}
	e.tuned[fp] = tb
	res, err := isasel.AutoTune(e.sys.model, isasel.Options{MaxInstructions: pt.Fuel}, pt.Sources...)
	if err != nil {
		tb.err = fmt.Errorf("auto-tune: %w", err)
		return tb
	}
	const baseISA = "RISC"
	overrides := map[string]string{}
	var parts []string
	for _, ch := range res.Choices {
		overrides[ch.Function] = ch.ISA
		parts = append(parts, ch.Function+":"+ch.ISA)
	}
	sort.Strings(parts)
	tb.resolved = "auto(" + baseISA
	if len(parts) > 0 {
		tb.resolved += ";" + strings.Join(parts, ",")
	}
	tb.resolved += ")"
	tb.width, _ = e.sys.IssueWidth(baseISA)
	for _, name := range overrides {
		if w, err := e.sys.IssueWidth(name); err == nil && w > tb.width {
			tb.width = w
		}
	}
	tb.exe, tb.err = e.sys.buildMixed(ctx, baseISA, overrides, pt.Sources)
	return tb
}
