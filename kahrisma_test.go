package kahrisma_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	kahrisma "repro"
	"repro/internal/trace"
)

const facadeProg = `
int work(int n) {
    int s = 0;
    for (int i = 1; i <= n; i++) s += i * i;
    return s;
}
int main() {
    printf("sum=%d\n", work(10));
    return work(5);
}
`

func newSys(t *testing.T) *kahrisma.System {
	t.Helper()
	sys, err := kahrisma.New()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestFacadeBuildAndRun(t *testing.T) {
	sys := newSys(t)
	if got := sys.ISAs(); len(got) != 5 || got[0] != "RISC" {
		t.Fatalf("ISAs = %v", got)
	}
	if w, err := sys.IssueWidth("VLIW6"); err != nil || w != 6 {
		t.Fatalf("IssueWidth(VLIW6) = %d, %v", w, err)
	}
	if _, err := sys.IssueWidth("NOPE"); err == nil {
		t.Fatal("bogus ISA accepted")
	}

	exe, err := sys.BuildC("VLIW4", map[string]string{"p.c": facadeProg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exe.Run(context.Background(), kahrisma.WithModels("ILP", "AIE", "DOE", "RTL"))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 55 {
		t.Errorf("exit = %d, want 55", res.ExitCode)
	}
	if res.Output != "sum=385\n" {
		t.Errorf("output = %q", res.Output)
	}
	for _, m := range []string{"ILP", "AIE", "DOE", "RTL"} {
		if res.Cycles[m] == 0 {
			t.Errorf("model %s recorded no cycles", m)
		}
		if res.OPC[m] <= 0 {
			t.Errorf("model %s OPC = %f", m, res.OPC[m])
		}
	}
	if res.Cycles["ILP"] > res.Cycles["AIE"] {
		t.Errorf("ILP (%d) exceeds AIE (%d)", res.Cycles["ILP"], res.Cycles["AIE"])
	}
	if res.Instructions == 0 || res.Operations < res.Instructions {
		t.Errorf("instr/ops = %d/%d", res.Instructions, res.Operations)
	}
}

func TestFacadeELFRoundTripAndDisasm(t *testing.T) {
	sys := newSys(t)
	exe, err := sys.BuildC("RISC", map[string]string{"p.c": facadeProg})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := exe.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	exe2, err := sys.LoadExecutable(raw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exe2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 55 {
		t.Fatalf("reloaded exit = %d", res.ExitCode)
	}
	listing := strings.Join(exe.Disassemble(), "\n")
	for _, want := range []string{"<main>:", "<work>:", "jal"} {
		if !strings.Contains(listing, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}

func TestFacadeTraceAndLocation(t *testing.T) {
	sys := newSys(t)
	exe, err := sys.BuildC("RISC", map[string]string{"p.c": facadeProg})
	if err != nil {
		t.Fatal(err)
	}
	var tr bytes.Buffer
	res, err := exe.Run(context.Background(), kahrisma.WithModels("DOE"), kahrisma.WithTrace(&tr))
	if err != nil {
		t.Fatal(err)
	}
	evs, err := trace.Read(&tr)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(evs)) != res.Operations {
		t.Errorf("trace has %d events, executed %d operations", len(evs), res.Operations)
	}
	// Cycle numbers come from the DOE model and must be non-decreasing.
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Fatalf("trace cycles decrease at %d", i)
		}
	}
	loc := exe.Location(evs[len(evs)/2].Addr)
	if !strings.Contains(loc, "p.c:") {
		t.Errorf("location %q lacks source mapping", loc)
	}
}

func TestFacadePerFunctionILPAndRecommend(t *testing.T) {
	sys := newSys(t)
	src := `
int unrolled(int* x) {
    int a = x[0] + 1; int b = x[1] + 2; int c = x[2] + 3; int d = x[3] + 4;
    int e = x[4] + 5; int f = x[5] + 6; int g = x[6] + 7; int h = x[7] + 8;
    return ((a + b) + (c + d)) + ((e + f) + (g + h));
}
int serial(int n) {
    int s = 1;
    for (int i = 0; i < n; i++) s = s * 3 + 1;
    return s;
}
int buf[8];
int main() {
    int acc = 0;
    for (int i = 0; i < 50; i++) acc += unrolled(buf) + serial(20);
    return acc & 0xFF;
}
`
	exe, err := sys.BuildC("RISC", map[string]string{"p.c": src})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exe.Run(context.Background(), kahrisma.WithPerFunctionILP())
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, f := range res.FunctionILP {
		vals[f.Name] = f.ILP
	}
	if vals["unrolled"] <= vals["serial"] {
		t.Errorf("ILP(unrolled)=%.2f should exceed ILP(serial)=%.2f",
			vals["unrolled"], vals["serial"])
	}
	wide := sys.RecommendISA(vals["unrolled"], 0.7)
	narrow := sys.RecommendISA(vals["serial"], 0.7)
	wWide, _ := sys.IssueWidth(wide)
	wNarrow, _ := sys.IssueWidth(narrow)
	if wWide <= wNarrow {
		t.Errorf("recommendations: unrolled -> %s, serial -> %s; expected a wider instance for the parallel function", wide, narrow)
	}
	if wNarrow > 2 {
		t.Errorf("serial function recommended %s; expected a narrow instance", narrow)
	}
}

func TestFacadeErrors(t *testing.T) {
	sys := newSys(t)
	if _, err := sys.BuildC("BOGUS", map[string]string{"p.c": facadeProg}); err == nil {
		t.Error("bogus ISA accepted by BuildC")
	}
	if _, err := sys.BuildC("RISC", map[string]string{"p.c": "int main() { return x; }"}); err == nil {
		t.Error("compile error not reported")
	}
	if _, err := sys.LoadExecutable([]byte("junk")); err == nil {
		t.Error("junk executable accepted")
	}
	exe, err := sys.BuildC("RISC", map[string]string{"p.c": facadeProg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exe.Run(context.Background(), kahrisma.WithModels("WARP")); err == nil {
		t.Error("bogus model accepted")
	}
}
