#!/usr/bin/env bash
# End-to-end smoke of the simulation service: build kservd, start it,
# submit a job over HTTP, poll it to completion, check the result, the
# static-analysis endpoint, the live SSE event stream and the metrics,
# then verify the SIGTERM drain exits cleanly.
set -euo pipefail

cd "$(dirname "$0")/.."
PORT="${KSERVD_PORT:-18080}"
OTLP_PORT="${FAKEOTLP_PORT:-18318}"
BASE="http://127.0.0.1:$PORT"
OTLP="http://127.0.0.1:$OTLP_PORT"

go build -o bin/kservd ./cmd/kservd
go build -o bin/fakeotlp ./scripts/fakeotlp

# A fake OTLP collector receives the daemon's span and metric export
# (docs/observability.md); /stats reports how much telemetry arrived.
./bin/fakeotlp -addr "127.0.0.1:$OTLP_PORT" &
OTLP_PID=$!
./bin/kservd -addr "127.0.0.1:$PORT" -workers 2 -queue 8 \
    -trace-spans -otlp-endpoint "$OTLP" -otlp-interval 200ms &
PID=$!
trap 'kill -9 $PID $OTLP_PID 2>/dev/null || true' EXIT

for i in $(seq 1 100); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
    [ "$i" = 100 ] && { echo "smoke: kservd never became healthy" >&2; exit 1; }
    sleep 0.1
done

ACCEPT=$(curl -sf "$BASE/v1/jobs" -d '{
  "isa": "VLIW4",
  "sources": {"main.c": "int main() { int s = 0; for (int i = 1; i <= 100; i++) s += i; printf(\"s=%d\\n\", s); return 0; }"},
  "models": ["ILP", "DOE"]
}')
ID=$(printf '%s' "$ACCEPT" | sed 's/.*"id":"\([^"]*\)".*/\1/')
[ -n "$ID" ] || { echo "smoke: no job id in: $ACCEPT" >&2; exit 1; }
echo "smoke: submitted job $ID"

RESULT=""
for i in $(seq 1 200); do
    if RESULT=$(curl -sf "$BASE/v1/jobs/$ID/result" 2>/dev/null); then break; fi
    [ "$i" = 200 ] && { echo "smoke: job $ID never finished" >&2; exit 1; }
    sleep 0.1
done
echo "smoke: result: $RESULT"
printf '%s' "$RESULT" | grep -q '"state":"done"' || { echo "smoke: job did not complete" >&2; exit 1; }
printf '%s' "$RESULT" | grep -q '"output":"s=5050\\n"' || { echo "smoke: wrong program output" >&2; exit 1; }

METRICS=$(curl -sf "$BASE/metrics")
printf '%s\n' "$METRICS" | grep -q '^kservd_jobs_completed_total 1$' || {
    echo "smoke: completed counter missing:" >&2
    printf '%s\n' "$METRICS" | grep kservd_jobs >&2
    exit 1
}

# The static-analysis endpoint must pass a clean program through.
ANALYSIS=$(curl -sf "$BASE/v1/analyze" -d '{
  "isa": "VLIW4",
  "sources": {"main.c": "int main() { int s = 0; for (int i = 1; i <= 100; i++) s += i; printf(\"s=%d\\n\", s); return 0; }"}
}')
printf '%s' "$ANALYSIS" | grep -q '"clean":true' || { echo "smoke: analysis not clean: $ANALYSIS" >&2; exit 1; }
echo "smoke: analysis clean"

# A profiled job must serve its symbolized report and a pprof export
# from /v1/jobs/{id}/profile (docs/profiling.md).
ACCEPTP=$(curl -sf "$BASE/v1/jobs" -d '{
  "isa": "VLIW4",
  "sources": {"main.c": "int work(int n) { int s = 0; for (int i = 1; i <= n; i++) s += i * i; return s; } int main() { printf(\"w=%d\\n\", work(50)); return 0; }"},
  "models": ["DOE"],
  "profile": true
}')
IDP=$(printf '%s' "$ACCEPTP" | sed 's/.*"id":"\([^"]*\)".*/\1/')
[ -n "$IDP" ] || { echo "smoke: no job id in: $ACCEPTP" >&2; exit 1; }
for i in $(seq 1 200); do
    if RESULTP=$(curl -sf "$BASE/v1/jobs/$IDP/result" 2>/dev/null); then break; fi
    [ "$i" = 200 ] && { echo "smoke: profiled job never finished" >&2; exit 1; }
    sleep 0.1
done
printf '%s' "$RESULTP" | grep -q '"profiled":true' || { echo "smoke: result not marked profiled: $RESULTP" >&2; exit 1; }
PROFILE=$(curl -sf "$BASE/v1/jobs/$IDP/profile?top=5")
printf '%s' "$PROFILE" | grep -q '"func":"work"' || { echo "smoke: no symbolized hotspot in: $PROFILE" >&2; exit 1; }
PPROF_FILE=$(mktemp)
curl -sf "$BASE/v1/jobs/$IDP/profile?format=pprof" -o "$PPROF_FILE"
MAGIC=$(head -c 2 "$PPROF_FILE" | od -An -tx1 | tr -d ' ')
rm -f "$PPROF_FILE"
[ "$MAGIC" = "1f8b" ] || { echo "smoke: pprof export is not gzip (magic $MAGIC)" >&2; exit 1; }
echo "smoke: profile served (JSON report + gzipped pprof)"

# Live event streaming: submit a long job with per-op streaming and
# capture its SSE feed concurrently; the stream must carry op, progress
# and a terminal done frame (docs/streaming.md).
ACCEPT3=$(curl -sf "$BASE/v1/jobs" -d '{
  "isa": "RISC",
  "sources": {"main.c": "int main() { int s = 0; for (int i = 0; i < 500000; i++) s += i % 7; printf(\"s=%d\\n\", s); return 0; }"},
  "stream": true
}')
ID3=$(printf '%s' "$ACCEPT3" | sed 's/.*"id":"\([^"]*\)".*/\1/')
[ -n "$ID3" ] || { echo "smoke: no job id in: $ACCEPT3" >&2; exit 1; }
SSE_FILE=$(mktemp)
curl -sN --max-time 30 "$BASE/v1/jobs/$ID3/events" > "$SSE_FILE"
grep -q '^event: op$' "$SSE_FILE" || { echo "smoke: no op events on live stream" >&2; exit 1; }
tail -5 "$SSE_FILE" | grep -q '^event: done$' || {
    echo "smoke: live stream did not end with a done frame:" >&2
    tail -10 "$SSE_FILE" >&2
    exit 1
}
echo "smoke: live stream delivered $(grep -c '^event: ' "$SSE_FILE") frames"
for i in $(seq 1 200); do
    if curl -sf "$BASE/v1/jobs/$ID3/result" >/dev/null 2>&1; then break; fi
    [ "$i" = 200 ] && { echo "smoke: streamed job never finished" >&2; exit 1; }
    sleep 0.1
done
# Replaying the finished job's ring must deterministically end with the
# final progress snapshot and the done frame.
# Grep a file, not a pipe: with pipefail, `printf big-data | grep -q`
# flakes when grep exits on a match while printf is still writing
# (printf dies with SIGPIPE and the pipeline reports failure).
REPLAY_FILE=$(mktemp)
curl -sN --max-time 30 "$BASE/v1/jobs/$ID3/events" > "$REPLAY_FILE"
grep -q '^event: progress$' "$REPLAY_FILE" || { echo "smoke: no progress frame in replay" >&2; exit 1; }
tail -5 "$REPLAY_FILE" | grep -q '^event: done$' || { echo "smoke: replay missing done frame" >&2; exit 1; }
rm -f "$REPLAY_FILE"
rm -f "$SSE_FILE"
echo "smoke: replay carried final progress + done"

# Design-space campaign (docs/campaigns.md): POST a small grid, follow
# its SSE progress to the done frame, then check the Pareto-ranked
# report and the campaign metrics.
CACCEPT=$(curl -sf "$BASE/v1/campaigns" -d '{
  "name": "smoke",
  "sources": {"main.c": "int main() { int s = 0; for (int i = 1; i <= 100; i++) s += i; printf(\"s=%d\\n\", s); return 0; }"},
  "isas": ["RISC", "VLIW4"],
  "memories": ["paper", "limit:1|cache:1K,2,16,3|mem:18"]
}')
CID=$(printf '%s' "$CACCEPT" | sed 's/.*"id":"\([^"]*\)".*/\1/')
[ -n "$CID" ] || { echo "smoke: no campaign id in: $CACCEPT" >&2; exit 1; }
CSSE_FILE=$(mktemp)
curl -sN --max-time 60 "$BASE/v1/campaigns/$CID/events" > "$CSSE_FILE"
grep -q '^event: campaign_progress$' "$CSSE_FILE" || { echo "smoke: no campaign_progress frames on stream" >&2; exit 1; }
tail -5 "$CSSE_FILE" | grep -q '^event: done$' || {
    echo "smoke: campaign stream did not end with a done frame:" >&2
    tail -10 "$CSSE_FILE" >&2
    exit 1
}
rm -f "$CSSE_FILE"
for i in $(seq 1 200); do
    if CREPORT=$(curl -sf "$BASE/v1/campaigns/$CID/report" 2>/dev/null); then break; fi
    [ "$i" = 200 ] && { echo "smoke: campaign report never became available" >&2; exit 1; }
    sleep 0.1
done
printf '%s' "$CREPORT" | grep -q '"succeeded":4' || { echo "smoke: campaign did not succeed on all 4 points: $CREPORT" >&2; exit 1; }
printf '%s' "$CREPORT" | grep -q '"rank":1' || { echo "smoke: report carries no ranked rows: $CREPORT" >&2; exit 1; }
printf '%s' "$CREPORT" | grep -q '"pareto":true' || { echo "smoke: report flags no Pareto-frontier row: $CREPORT" >&2; exit 1; }
CMETRICS=$(curl -sf "$BASE/metrics")
printf '%s\n' "$CMETRICS" | grep -q '^kservd_campaigns_completed_total 1$' || {
    echo "smoke: campaign completion counter missing:" >&2
    printf '%s\n' "$CMETRICS" | grep kservd_campaign >&2
    exit 1
}
printf '%s\n' "$CMETRICS" | grep -q '^kservd_campaign_points_total 4$' || {
    echo "smoke: campaign point counter wrong:" >&2
    printf '%s\n' "$CMETRICS" | grep kservd_campaign >&2
    exit 1
}
echo "smoke: campaign $CID ran 4 points, Pareto report served"

# Cancellation is first-come-first-served: DELETE on a finished
# campaign must conflict, an unknown id must 404.
CDEL=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "$BASE/v1/campaigns/$CID")
[ "$CDEL" = "409" ] || { echo "smoke: DELETE finished campaign returned $CDEL, want 409" >&2; exit 1; }
CDEL404=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "$BASE/v1/campaigns/no-such-id")
[ "$CDEL404" = "404" ] || { echo "smoke: DELETE unknown campaign returned $CDEL404, want 404" >&2; exit 1; }
echo "smoke: campaign cancel endpoint answers 409/404 correctly"

# A repeat of the same program must be an artifact-cache hit.
ACCEPT2=$(curl -sf "$BASE/v1/jobs" -d '{
  "isa": "VLIW4",
  "sources": {"main.c": "int main() { int s = 0; for (int i = 1; i <= 100; i++) s += i; printf(\"s=%d\\n\", s); return 0; }"},
  "models": ["ILP", "DOE"]
}')
ID2=$(printf '%s' "$ACCEPT2" | sed 's/.*"id":"\([^"]*\)".*/\1/')
for i in $(seq 1 200); do
    if RESULT2=$(curl -sf "$BASE/v1/jobs/$ID2/result" 2>/dev/null); then break; fi
    sleep 0.1
done
printf '%s' "$RESULT2" | grep -q '"cache_hit":true' || { echo "smoke: repeat was not a cache hit: $RESULT2" >&2; exit 1; }

# The timed OTLP flush must have delivered at least one span batch and
# one metric batch from the real jobs above to the fake collector.
for i in $(seq 1 100); do
    STATS=$(curl -sf "$OTLP/stats")
    T=$(printf '%s' "$STATS" | sed 's/.*"trace_batches":\([0-9]*\).*/\1/')
    M=$(printf '%s' "$STATS" | sed 's/.*"metric_batches":\([0-9]*\).*/\1/')
    [ "${T:-0}" -ge 1 ] && [ "${M:-0}" -ge 1 ] && break
    [ "$i" = 100 ] && { echo "smoke: collector never saw telemetry: $STATS" >&2; exit 1; }
    sleep 0.1
done
echo "smoke: OTLP collector received $STATS"

kill -TERM $PID
for i in $(seq 1 100); do
    kill -0 $PID 2>/dev/null || break
    [ "$i" = 100 ] && { echo "smoke: kservd did not drain after SIGTERM" >&2; exit 1; }
    sleep 0.1
done
wait $PID 2>/dev/null || { echo "smoke: kservd exited non-zero" >&2; exit 1; }
kill $OTLP_PID 2>/dev/null || true
trap - EXIT
echo "smoke: OK"
