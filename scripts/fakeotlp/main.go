// Command fakeotlp is a throwaway OTLP/HTTP collector for smoke tests.
// It accepts span and metric batches on the standard OTLP ingestion
// paths, counts them, and reports the tallies as JSON on /stats so a
// shell script can assert that telemetry actually arrived.
//
//	go run ./scripts/fakeotlp -addr 127.0.0.1:4318
package main

import (
	"encoding/json"
	"flag"
	"io"
	"log"
	"net/http"
	"sync/atomic"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4318", "listen address")
	flag.Parse()

	var traces, metrics, spans atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/traces", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		traces.Add(1)
		// Count individual spans so the smoke test can assert the job
		// pipeline produced more than an empty envelope.
		var doc struct {
			ResourceSpans []struct {
				ScopeSpans []struct {
					Spans []json.RawMessage `json:"spans"`
				} `json:"scopeSpans"`
			} `json:"resourceSpans"`
		}
		if json.Unmarshal(body, &doc) == nil {
			for _, rs := range doc.ResourceSpans {
				for _, ss := range rs.ScopeSpans {
					spans.Add(int64(len(ss.Spans)))
				}
			}
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		metrics.Add(1)
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]int64{
			"trace_batches":  traces.Load(),
			"metric_batches": metrics.Load(),
			"spans":          spans.Load(),
		})
	})

	log.Printf("fakeotlp listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
