GO ?= go

.PHONY: all build test race bench bench-pool bench-gate bench-baseline bench-matrix verify fmt-check vet lint kvet klint apidiff apidiff-baseline serve smoke prof campaign clean

all: verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Race-detector pass over the whole tree: the simulation pool, the
# facade and the concurrency tests must stay race-clean.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Throughput scaling of the batch simulation engine only.
bench-pool:
	$(GO) test -run '^$$' -bench BenchmarkPoolScaling -benchtime=2s .

# Benchmark regression gate (cmd/kbenchgate): re-run the decode and
# pool hot-path benchmarks, snapshot the throughput metrics to
# BENCH_ci.json, and fail on a >15% drop against the committed
# BENCH_baseline.json. Best-of -count=3 damps runner noise.
BENCH_GATE = 'BenchmarkTable1|BenchmarkPoolScaling'
bench-gate:
	$(GO) test -run '^$$' -bench $(BENCH_GATE) -benchtime=3x -count=3 . \
		| $(GO) run ./cmd/kbenchgate -out BENCH_ci.json -baseline BENCH_baseline.json

# Per-worker scaling curve on a multi-core host: snapshot the workers
# 1/2/4/8 pool throughput to BENCH_matrix.json and assert the workers=8
# pool sustains >= 2x the single-worker aggregate mips. Runs on the
# hosted CI runner (a 1-CPU container cannot show scaling).
bench-matrix:
	$(GO) test -run '^$$' -bench BenchmarkPoolScaling -benchtime=3x -count=3 . \
		| $(GO) run ./cmd/kbenchgate -out BENCH_matrix.json -baseline BENCH_baseline.json \
			-scale-from 'BenchmarkPoolScaling/workers=1' \
			-scale-to 'BenchmarkPoolScaling/workers=8' \
			-scale-unit agg-mips -scale-min 2

# Refresh the committed baseline on the machine class that runs the
# gate (baselines do not transfer between hosts).
bench-baseline:
	$(GO) test -run '^$$' -bench $(BENCH_GATE) -benchtime=3x -count=3 . \
		| $(GO) run ./cmd/kbenchgate -write-baseline BENCH_baseline.json

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs the repo's own static checks: kvet (host-side Go rules,
# cmd/kvet), klint over every shipped example program and the built-in
# workloads (guest-side, cmd/klint — docs/analysis.md), and staticcheck
# when it is installed (the CI installs it; locally it degrades to
# go vet so the target works offline).
lint: vet kvet klint
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; ran go vet only"; \
	fi

kvet:
	$(GO) run ./cmd/kvet

# Public API surface gate (cmd/kapidiff): the facade's exported
# declarations must match the committed baseline, so surface changes
# are always a deliberate, reviewable diff.
apidiff:
	$(GO) run ./cmd/kapidiff -check api/kahrisma.txt .

# Regenerate the baseline after a deliberate API change.
apidiff-baseline:
	$(GO) run ./cmd/kapidiff -write api/kahrisma.txt .

# The shipped examples and workloads must stay klint-clean (the CI
# gate); -min warning keeps the output to findings that matter.
klint:
	$(GO) run ./cmd/klint -min warning examples/*/src/*.c
	$(GO) run ./cmd/klint -min warning -isa RISC -workloads
	$(GO) run ./cmd/klint -min warning -isa VLIW4 -workloads

# Run the simulation service (docs/server.md).
serve:
	$(GO) run ./cmd/kservd -addr :8080

# End-to-end smoke of kservd: start the daemon, submit a job over
# HTTP, poll to completion, check metrics and the SIGTERM drain.
smoke:
	./scripts/smoke.sh

# Design-space campaign demonstration (docs/campaigns.md): sweep the
# quickstart program across every issue width and two memory
# hierarchies and print the Pareto-ranked report.
campaign:
	$(GO) run ./cmd/kcampaign -isas RISC,VLIW2,VLIW4,VLIW8 \
		-mems "paper;limit:1|cache:1K,2,16,3|mem:18" \
		examples/quickstart/src/dot.c

# Profiler smoke: profile the quickstart program end-to-end with kprof
# (docs/profiling.md) — hotspot table, annotated disassembly, pprof
# export — then render the export with the stock pprof tool.
prof:
	@mkdir -p bin
	$(GO) run ./cmd/kprof -isa VLIW4 -top 5 -disasm -pprof bin/quickstart.pb.gz examples/quickstart/src/dot.c
	$(GO) tool pprof -top -sample_index=cycles bin/quickstart.pb.gz

# verify mirrors the tier-1 gate plus the static checks the CI runs.
verify: fmt-check lint apidiff build test

clean:
	rm -rf bin
