GO ?= go

.PHONY: all build test race bench verify fmt-check vet clean

all: verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Race-detector pass over the whole tree: the simulation pool, the
# facade and the concurrency tests must stay race-clean.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Throughput scaling of the batch simulation engine only.
bench-pool:
	$(GO) test -run '^$$' -bench BenchmarkPoolScaling -benchtime=2s .

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# verify mirrors the tier-1 gate plus the static checks the CI runs.
verify: fmt-check vet build test

clean:
	rm -rf bin
