package kahrisma

import (
	"repro/internal/adl"
	"repro/internal/analysis"
	"repro/internal/targetgen"
)

// Static analysis facade: the same checks cmd/klint runs, exposed on
// System and Executable for embedders and the kservd /v1/analyze
// endpoint. The check catalogue (KA001..KB005), severities and exit
// conventions are documented in docs/analysis.md.

// Severity grades a lint diagnostic.
type Severity = analysis.Severity

// Severity levels, in ascending order.
const (
	SeverityInfo    = analysis.Info
	SeverityWarning = analysis.Warning
	SeverityError   = analysis.Error
)

// Diagnostic is one structured lint finding.
type Diagnostic = analysis.Diagnostic

// ParseSeverity maps the lowercase severity names ("info", "warning",
// "error") back to values.
func ParseSeverity(s string) (Severity, bool) { return analysis.ParseSeverity(s) }

// LintReport is an ordered collection of lint diagnostics.
type LintReport = analysis.Report

// LintOptions tune Executable.Lint.
type LintOptions struct {
	// DOEBounds adds one info diagnostic (check KB005) per recovered
	// basic block carrying the block's static DOE cycle lower bound.
	DOEBounds bool
}

// LintModel verifies the elaborated architecture model: ambiguous or
// shadowed constant-field encodings, register-field bounds and
// control-transfer operand shape (checks KA001..KA004). The built-in
// model and any model accepted by NewFromADL are clean by construction
// (elaboration refuses error-severity findings); NewFromADLLenient
// reaches the findings of deliberately broken descriptions.
func (s *System) LintModel() *LintReport {
	r := analysis.CheckModel(s.model)
	r.Sort()
	return r
}

// NewFromADLLenient elaborates a custom ADL description like NewFromADL
// but keeps models with error-severity analysis findings, returning the
// findings alongside. Structural defects (unparsable text, malformed
// formats) still fail. A system built from an erroneous model is
// suitable for inspection and linting only.
func NewFromADLLenient(text string) (*System, *LintReport, error) {
	doc, err := adl.Parse(text)
	if err != nil {
		return nil, nil, err
	}
	m, r, err := targetgen.ElaborateLenient(doc)
	if err != nil {
		return nil, nil, err
	}
	return &System{model: m}, r, nil
}

// Lint statically decodes and verifies the executable's text: a
// control-flow walk from the entry point and every function-table entry
// reports undecodable words (KB001), control transfers to out-of-text
// or misaligned targets (KB002), SWITCHTARGET and cross-ISA call
// inconsistencies (KB003), intra-bundle VLIW write-after-write hazards
// (KB004), and optionally the static DOE cycle lower bound per basic
// block (KB005).
func (e *Executable) Lint(opts LintOptions) *LintReport {
	res := analysis.AnalyzeExecutable(e.sys.model, e.prog, analysis.Options{DOEBounds: opts.DOEBounds})
	return &res.Report
}
