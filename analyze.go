package kahrisma

import (
	"fmt"

	"repro/internal/adl"
	"repro/internal/analysis"
	"repro/internal/targetgen"
)

// Static analysis facade: the same checks cmd/klint runs, exposed on
// System and Executable for embedders and the kservd /v1/analyze
// endpoint. The check catalogue (KA001..KB010), severities and exit
// conventions are documented in docs/analysis.md.

// Severity grades a lint diagnostic.
type Severity = analysis.Severity

// Severity levels, in ascending order.
const (
	SeverityInfo    = analysis.Info
	SeverityWarning = analysis.Warning
	SeverityError   = analysis.Error
)

// Diagnostic is one structured lint finding.
type Diagnostic = analysis.Diagnostic

// ParseSeverity maps the lowercase severity names ("info", "warning",
// "error") back to values.
func ParseSeverity(s string) (Severity, bool) { return analysis.ParseSeverity(s) }

// LintReport is an ordered collection of lint diagnostics.
type LintReport = analysis.Report

// LintOptions tune Executable.Lint.
type LintOptions struct {
	// DOEBounds adds one info diagnostic (check KB005) per recovered
	// basic block carrying the block's static DOE cycle lower bound.
	DOEBounds bool
	// Checks restricts the report to the listed check IDs (nil: all).
	// KB005 additionally requires DOEBounds.
	Checks []string
}

// CheckInfo describes one entry of the analysis check catalogue.
type CheckInfo = analysis.CheckInfo

// Checks returns the full analysis check catalogue (KA001..KB010) in
// ID order.
func Checks() []CheckInfo { return analysis.Checks() }

// KnownCheck reports whether id names a catalogued check.
func KnownCheck(id string) bool { return analysis.KnownCheck(id) }

// LintModel verifies the elaborated architecture model: ambiguous or
// shadowed constant-field encodings, register-field bounds and
// control-transfer operand shape (checks KA001..KA004). The built-in
// model and any model accepted by NewFromADL are clean by construction
// (elaboration refuses error-severity findings); NewFromADLLenient
// reaches the findings of deliberately broken descriptions.
func (s *System) LintModel() *LintReport {
	r := analysis.CheckModel(s.model)
	r.Sort()
	return r
}

// NewFromADLLenient elaborates a custom ADL description like NewFromADL
// but keeps models with error-severity analysis findings, returning the
// findings alongside. Structural defects (unparsable text, malformed
// formats) still fail. A system built from an erroneous model is
// suitable for inspection and linting only.
func NewFromADLLenient(text string) (*System, *LintReport, error) {
	doc, err := adl.Parse(text)
	if err != nil {
		return nil, nil, err
	}
	m, r, err := targetgen.ElaborateLenient(doc)
	if err != nil {
		return nil, nil, err
	}
	return &System{model: m}, r, nil
}

// Lint statically decodes and verifies the executable's text: a
// control-flow walk from the entry point and every function-table entry
// reports undecodable words (KB001), control transfers to out-of-text
// or misaligned targets (KB002), SWITCHTARGET and cross-ISA call
// inconsistencies (KB003), intra-bundle VLIW write-after-write hazards
// (KB004), and optionally the static DOE cycle lower bound per basic
// block (KB005).
func (e *Executable) Lint(opts LintOptions) *LintReport {
	res := analysis.AnalyzeExecutable(e.sys.model, e.prog, analysis.Options{
		DOEBounds: opts.DOEBounds,
		Checks:    opts.Checks,
	})
	return &res.Report
}

// StaticBoundsReport is the outcome of CheckStaticBounds.
type StaticBoundsReport = analysis.StaticBoundsReport

// StaticBoundViolation is one failed static-bounds invariant.
type StaticBoundViolation = analysis.StaticBoundViolation

// CheckStaticBounds cross-checks a measured profile against the static
// DOE cycle lower bounds (check KB005) of this executable: the run's
// total DOE cycles must cover the static bound of every basic block the
// profile shows executed, and must be at least the executed instruction
// count. The profile's primary cycle model must be DOE — bounds proved
// for DOE say nothing about other models — and kprof -check-static
// enforces exactly this.
func (e *Executable) CheckStaticBounds(p *Profile) (*StaticBoundsReport, error) {
	if p == nil || len(p.PCs) == 0 {
		return nil, fmt.Errorf("static bounds check needs a non-empty profile (run with profiling enabled)")
	}
	if p.CycleModel != "DOE" {
		return nil, fmt.Errorf("static bounds check needs DOE as the primary cycle model, profile measured %q", p.CycleModel)
	}
	res := analysis.AnalyzeExecutable(e.sys.model, e.prog, analysis.Options{DOEBounds: true})
	counts := make(map[uint32]uint64, len(p.PCs))
	for pc, s := range p.PCs {
		counts[pc] = s.Count
	}
	return analysis.CheckStaticBounds(res, counts, p.Instructions, p.Cycles), nil
}
