package kahrisma_test

import (
	"context"
	"testing"

	kahrisma "repro"
	"repro/internal/workloads"
)

// The static DOE lower bounds (KB005) must be consistent with measured
// DOE runs of every bundled workload: the cross-check kprof
// -check-static performs has to pass on the whole corpus, at a scalar
// and a VLIW entry ISA.
func TestStaticBoundsHoldOnWorkloads(t *testing.T) {
	sys := newSys(t)
	for _, w := range workloads.All() {
		for _, isaName := range []string{"RISC", "VLIW4"} {
			files := map[string]string{}
			for _, s := range w.Sources {
				files[s.Name] = s.Text
			}
			exe, err := sys.BuildC(isaName, files)
			if err != nil {
				t.Fatalf("%s/%s: build: %v", w.Name, isaName, err)
			}
			res, err := exe.Run(context.Background(),
				kahrisma.WithModels("DOE"), kahrisma.WithProfiling())
			if err != nil {
				t.Fatalf("%s/%s: run: %v", w.Name, isaName, err)
			}
			sb, err := exe.CheckStaticBounds(res.Profile)
			if err != nil {
				t.Fatalf("%s/%s: check: %v", w.Name, isaName, err)
			}
			if sb.ExecutedBlocks == 0 {
				t.Errorf("%s/%s: no executed block matched a recovered block", w.Name, isaName)
			}
			for _, v := range sb.Violations {
				t.Errorf("%s/%s: %s", w.Name, isaName, v.Msg)
			}
		}
	}
}

// A non-DOE profile is rejected rather than checked against bounds that
// say nothing about its model.
func TestStaticBoundsRequireDOE(t *testing.T) {
	sys := newSys(t)
	exe, err := sys.BuildC("RISC", map[string]string{"p.c": facadeProg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exe.Run(context.Background(),
		kahrisma.WithModels("ILP"), kahrisma.WithProfiling())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exe.CheckStaticBounds(res.Profile); err == nil {
		t.Fatal("ILP-measured profile accepted by the DOE bounds check")
	}
	if _, err := exe.CheckStaticBounds(nil); err == nil {
		t.Fatal("nil profile accepted")
	}
}
