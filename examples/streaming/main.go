// Live event streaming: attach a Streamer to a run and consume its
// progress snapshots, ISA-switch events and terminal done event from a
// concurrent goroutine while the simulation executes — the in-process
// form of what kservd serves over SSE (docs/streaming.md).
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"

	kahrisma "repro"
)

// A mixed-ISA program: main runs on RISC, the kernel on VLIW4, so the
// stream carries isa_switch events for every call and return.
const program = `
__isa(VLIW4) int kernel(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += i * i - n;
    return s;
}
int main() {
    int acc = 0;
    for (int i = 0; i < 50; i++) acc += kernel(400);
    printf("acc=%d\n", acc);
    return 0;
}
`

func main() {
	sys, err := kahrisma.New()
	if err != nil {
		log.Fatal(err)
	}
	exe, err := sys.BuildC("RISC", map[string]string{"main.c": program})
	if err != nil {
		log.Fatal(err)
	}

	// A Streamer fans events out to any number of subscribers through a
	// bounded ring; the simulation never blocks on a slow reader.
	streamer := kahrisma.NewStreamer(0) // 0: default ring capacity
	sub := streamer.Subscribe(0)

	watcher := make(chan struct{})
	go func() {
		defer close(watcher)
		var switches, progress int
		for {
			batch, missed, err := sub.Next(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			if missed > 0 {
				fmt.Printf("  (fell behind: %d events evicted)\n", missed)
			}
			if batch == nil {
				fmt.Printf("stream closed after %d progress snapshots, %d ISA switches\n",
					progress, switches)
				return
			}
			for _, ev := range batch {
				switch ev.Type {
				case kahrisma.StreamEventProgress:
					progress++
					if progress <= 5 {
						fmt.Printf("  progress: %7d instr  %7d ops  isa %s\n",
							ev.Progress.Instructions, ev.Progress.Operations, ev.Progress.ISA)
					}
				case kahrisma.StreamEventISASwitch:
					switches++
					if switches <= 4 {
						fmt.Printf("  switch:   %s -> %s @ %d instr\n",
							ev.ISASwitch.From, ev.ISASwitch.To, ev.ISASwitch.Instructions)
					}
				case kahrisma.StreamEventDone:
					fmt.Printf("  done:     exit %d after %d instructions\n",
						ev.Done.ExitCode, ev.Done.Instructions)
				}
			}
		}
	}()

	res, err := exe.Run(context.Background(),
		kahrisma.WithModels("DOE"),
		kahrisma.WithEventSink(streamer),
		kahrisma.WithProgressInterval(25_000))
	if err != nil {
		log.Fatal(err)
	}
	<-watcher

	fmt.Printf("program output: %s", res.Output)
	fmt.Printf("final: %d instructions, %d DOE cycles — identical to a non-streamed run\n",
		res.Instructions, res.Cycles["DOE"])
}
