// An image-pipeline sketch: a wide unrolled blend kernel (high ILP,
// stripe-sized calls), a serial histogram update, and control code.
int imgA[256];
int imgB[256];
int outv[256];
int hist[16];

int blend(int* a, int* b, int* o, int n) {
    int acc = 0;
    for (int i = 0; i + 8 <= n; i += 8) {
        int x0 = (a[i]   * 3 + b[i]   * 5) >> 3;
        int x1 = (a[i+1] * 3 + b[i+1] * 5) >> 3;
        int x2 = (a[i+2] * 3 + b[i+2] * 5) >> 3;
        int x3 = (a[i+3] * 3 + b[i+3] * 5) >> 3;
        int x4 = (a[i+4] * 3 + b[i+4] * 5) >> 3;
        int x5 = (a[i+5] * 3 + b[i+5] * 5) >> 3;
        int x6 = (a[i+6] * 3 + b[i+6] * 5) >> 3;
        int x7 = (a[i+7] * 3 + b[i+7] * 5) >> 3;
        o[i] = x0;   o[i+1] = x1; o[i+2] = x2; o[i+3] = x3;
        o[i+4] = x4; o[i+5] = x5; o[i+6] = x6; o[i+7] = x7;
        acc += ((x0 + x1) + (x2 + x3)) + ((x4 + x5) + (x6 + x7));
    }
    return acc;
}

void histo(int* v, int n) {
    for (int i = 0; i < n; i++) {
        hist[(v[i] >> 4) & 15]++;
    }
}

int main() {
    for (int i = 0; i < 256; i++) { imgA[i] = (i * 7) & 255; imgB[i] = (i * 13) & 255; }
    int acc = 0;
    for (int frame = 0; frame < 24; frame++) {
        acc += blend(imgA, imgB, outv, 256);
        histo(outv, 256);
    }
    return (acc + hist[3]) & 0xFF;
}
