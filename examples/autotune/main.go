// Automatic ISA selection — the paper's future work (Sec. VIII),
// implemented: profile the application once on the RISC instance with
// the per-function ILP measurement, choose an instance per hot function
// while weighing the fabric's reconfiguration overhead, rebuild the
// program mixed-ISA (SWITCHTARGET pairs at the cross-ISA call sites),
// and compare DOE cycle counts with the reconfiguration bill included.
//
//	go run ./examples/autotune
package main

import (
	_ "embed"
	"fmt"
	"log"

	kahrisma "repro"
)

//go:embed src/app.c
var app string

func main() {
	sys, err := kahrisma.New()
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.AutoTune(kahrisma.AutoTuneOptions{}, map[string]string{"app.c": app})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	fmt.Println("\nThe selector used one profiling run on the RISC instance; no")
	fmt.Println("per-ISA sweep of the application was needed (the paper's Sec. I")
	fmt.Println("promise for the theoretical ILP measurement).")
}
