// Strided walks over a 16 KiB array: a working set far beyond the
// 2 KiB L1, touching a different cache line almost every access.
int big[4096];

int walk(int stride, int rounds) {
    int s = 0;
    for (int r = 0; r < rounds; r++) {
        for (int i = 0; i < 4096; i += stride) {
            s += big[i];
        }
    }
    return s;
}

int main() {
    for (int i = 0; i < 4096; i++) big[i] = i & 15;
    int a = walk(8, 4);    // one access per 32-byte line
    int b = walk(1, 1);    // sequential
    printf("%d %d\n", a, b);
    return 0;
}
