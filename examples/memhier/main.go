// Memory hierarchy exploration: the AIE and DOE cycle models price
// every memory access through the composable module hierarchy of
// Sec. VI-D (caches, connection limits, main memory). This example runs
// a cache-unfriendly kernel against the paper's L1/L2/DRAM hierarchy and
// against flat memories, showing how much of the cycle count the memory
// approximation contributes.
//
//	go run ./examples/memhier
package main

import (
	"context"
	_ "embed"
	"fmt"
	"log"

	kahrisma "repro"
)

//go:embed src/walk.c
var program string

func main() {
	sys, err := kahrisma.New()
	if err != nil {
		log.Fatal(err)
	}
	exe, err := sys.BuildC("VLIW4", map[string]string{"walk.c": program})
	if err != nil {
		log.Fatal(err)
	}

	configs := []struct {
		name string
		mem  kahrisma.MemoryConfig
	}{
		{"paper hierarchy (L1 2KiB/3cyc + L2 256KiB/6cyc + DRAM 18cyc, 1 port)", kahrisma.MemoryConfig{}},
		{"flat 3-cycle memory (every access an L1 hit)", kahrisma.MemoryConfig{Flat: true, FlatDelay: 3}},
		{"flat 18-cycle memory (every access DRAM)", kahrisma.MemoryConfig{Flat: true, FlatDelay: 18}},
	}
	// The three hierarchies are independent simulations of the same
	// executable — a natural batch for the simulation pool: the linked
	// program is shared, each job prices its own memory hierarchy.
	pool := kahrisma.NewPool(0)
	defer pool.Close()
	items := make([]kahrisma.BatchItem, len(configs))
	for i, cfg := range configs {
		items[i] = kahrisma.BatchItem{
			Exe:  exe,
			Opts: []kahrisma.Option{kahrisma.WithModels("AIE", "DOE"), kahrisma.WithMemory(cfg.mem)},
		}
	}
	batch := pool.SubmitBatch(context.Background(), items)
	if err := batch.Wait(context.Background()); err != nil {
		log.Fatal(err)
	}
	results := batch.Results()
	for i, cfg := range configs {
		res := results[i]
		fmt.Printf("%s\n", cfg.name)
		fmt.Printf("  AIE %8d cycles   DOE %8d cycles", res.Cycles["AIE"], res.Cycles["DOE"])
		if !cfg.mem.Flat {
			fmt.Printf("   L1 miss rate %.1f%%", 100*res.L1MissRate)
		}
		fmt.Println()
	}
	fmt.Println("\nThe DOE model overlaps memory latency with independent operations;")
	fmt.Println("AIE executes instructions atomically and pays every delay in full.")
}
