// Custom architecture via the ADL: the entire toolchain (compiler,
// assembler, linker, simulator, cycle models) retargets to any
// architecture described in the ADL (Sec. IV of the paper: "retarget
// the compiler framework to any architecture described within the
// ADL"). This example derives a variant of KAHRISMA with a slow
// iterative multiplier (8 cycles instead of 3) and an additional
// 3-issue instance, then measures how the DOE cycle counts shift.
//
//	go run ./examples/customadl
package main

import (
	"context"
	_ "embed"
	"fmt"
	"log"
	"strings"

	kahrisma "repro"
)

//go:embed src/poly.c
var program string

func main() {
	// Derive the custom ADL from the built-in description.
	text := kahrisma.ADL()
	text = strings.ReplaceAll(text,
		"operation MUL   { format R set opcode = 0x00 set func = 2  class mul latency 3 sem mul }",
		"operation MUL   { format R set opcode = 0x00 set func = 2  class mul latency 8 sem mul }")
	text = strings.ReplaceAll(text,
		"isa VLIW4 { id 2 issue 4 }",
		"isa VLIW3 { id 5 issue 3 }\nisa VLIW4 { id 2 issue 4 }")

	stock, err := kahrisma.New()
	if err != nil {
		log.Fatal(err)
	}
	custom, err := kahrisma.NewFromADL(text)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stock instances: ", stock.ISAs())
	fmt.Println("custom instances:", custom.ISAs())

	measure := func(sys *kahrisma.System, label, isaName string) {
		exe, err := sys.BuildC(isaName, map[string]string{"poly.c": program})
		if err != nil {
			log.Fatal(err)
		}
		res, err := exe.Run(context.Background(), kahrisma.WithModels("DOE"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %-6s exit=%3d  DOE %6d cycles (%.2f ops/cycle)\n",
			label, isaName, res.ExitCode, res.Cycles["DOE"], res.OPC["DOE"])
	}
	fmt.Println("\nHorner polynomial (multiply-latency bound):")
	measure(stock, "3-cycle multiplier", "RISC")
	measure(custom, "8-cycle multiplier", "RISC")
	measure(stock, "3-cycle multiplier", "VLIW2")
	measure(custom, "8-cycle multiplier", "VLIW2")
	measure(custom, "8-cycle multiplier", "VLIW3")
	fmt.Println("\nThe slow multiplier stretches the dependent-multiply chain while")
	fmt.Println("the new 3-issue instance still absorbs the independent bookkeeping.")
}
