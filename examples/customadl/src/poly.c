int poly(int x) {
    // Horner evaluation: a chain of multiplies, sensitive to mul latency.
    int acc = 7;
    acc = acc * x + 5;
    acc = acc * x + 3;
    acc = acc * x + 2;
    acc = acc * x + 1;
    return acc;
}
int main() {
    int s = 0;
    for (int i = 0; i < 200; i++) s += poly(i & 7);
    return s & 0xFF;
}
