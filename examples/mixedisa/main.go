// Mixed-ISA execution: one binary whose functions run on different
// instruction formats. The compiler prefixes cross-ISA function symbols
// with the ISA identifier and inserts SWITCHTARGET instructions at the
// call sites (Sec. IV/V-D of the paper); the simulator switches its
// active operation table at run time.
//
//	go run ./examples/mixedisa
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	kahrisma "repro"
)

const program = `
// main and the control code run on the 1-issue RISC format; the
// convolution kernel is compiled for the 8-issue VLIW instance.
int img[128];
int out[128];

__isa(VLIW8) int conv3(int* x) {
    int a = x[0] * 3; int b = x[1] * 5; int c = x[2] * 3;
    int d = x[3] * 3; int e = x[4] * 5; int f = x[5] * 3;
    return ((a + b) + c) + ((d + e) + f);
}

int main() {
    for (int i = 0; i < 128; i++) img[i] = (i * 13) & 63;
    int acc = 0;
    for (int i = 0; i + 6 <= 128; i += 2) {
        out[i / 2] = conv3(&img[i]);
        acc += out[i / 2];
    }
    printf("acc=%d\n", acc);
    return 0;
}
`

func main() {
	sys, err := kahrisma.New()
	if err != nil {
		log.Fatal(err)
	}
	exe, err := sys.BuildC("RISC", map[string]string{"conv.c": program})
	if err != nil {
		log.Fatal(err)
	}
	res, err := exe.Run(context.Background(), kahrisma.WithModels("DOE"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %s", res.Output)
	fmt.Printf("ISA switches at run time: %d\n", res.Stats.ISASwitches)
	fmt.Printf("DOE cycles: %d (%.2f ops/cycle)\n", res.Cycles["DOE"], res.OPC["DOE"])

	fmt.Println("\ndisassembly around the ISA switch (note swt + VLIW8 bundles):")
	listing := exe.Disassemble()
	for i, line := range listing {
		if strings.Contains(line, "<VLIW8.conv3>") {
			start := i - 4
			if start < 0 {
				start = 0
			}
			for _, l := range listing[start:min(i+6, len(listing))] {
				fmt.Println(" ", l)
			}
			break
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
