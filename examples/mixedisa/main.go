// Mixed-ISA execution: one binary whose functions run on different
// instruction formats. The compiler prefixes cross-ISA function symbols
// with the ISA identifier and inserts SWITCHTARGET instructions at the
// call sites (Sec. IV/V-D of the paper); the simulator switches its
// active operation table at run time.
//
//	go run ./examples/mixedisa
package main

import (
	"context"
	_ "embed"
	"fmt"
	"log"
	"strings"

	kahrisma "repro"
)

//go:embed src/conv.c
var program string

func main() {
	sys, err := kahrisma.New()
	if err != nil {
		log.Fatal(err)
	}
	exe, err := sys.BuildC("RISC", map[string]string{"conv.c": program})
	if err != nil {
		log.Fatal(err)
	}
	res, err := exe.Run(context.Background(), kahrisma.WithModels("DOE"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %s", res.Output)
	fmt.Printf("ISA switches at run time: %d\n", res.Stats.ISASwitches)
	fmt.Printf("DOE cycles: %d (%.2f ops/cycle)\n", res.Cycles["DOE"], res.OPC["DOE"])

	fmt.Println("\ndisassembly around the ISA switch (note swt + VLIW8 bundles):")
	listing := exe.Disassemble()
	for i, line := range listing {
		if strings.Contains(line, "<VLIW8.conv3>") {
			start := i - 4
			if start < 0 {
				start = 0
			}
			for _, l := range listing[start:min(i+6, len(listing))] {
				fmt.Println(" ", l)
			}
			break
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
