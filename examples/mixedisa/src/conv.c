// main and the control code run on the 1-issue RISC format; the
// convolution kernel is compiled for the 8-issue VLIW instance.
int img[128];
int out[128];

__isa(VLIW8) int conv3(int* x) {
    int a = x[0] * 3; int b = x[1] * 5; int c = x[2] * 3;
    int d = x[3] * 3; int e = x[4] * 5; int f = x[5] * 3;
    return ((a + b) + c) + ((d + e) + f);
}

int main() {
    for (int i = 0; i < 128; i++) img[i] = (i * 13) & 63;
    int acc = 0;
    for (int i = 0; i + 6 <= 128; i += 2) {
        out[i / 2] = conv3(&img[i]);
        acc += out[i / 2];
    }
    printf("acc=%d\n", acc);
    return 0;
}
