int gcd(int a, int b) {
    while (b != 0) {
        int t = a % b;
        a = b;
        b = t;
    }
    return a;
}
int main() {
    printf("gcd(252, 105) = %d\n", gcd(252, 105));
    return 0;
}
