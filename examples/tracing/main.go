// Trace generation and debug mapping: the simulator writes a trace file
// with the cycle number, opcode, register numbers and values, and
// immediates of every executed operation (used to validate RTL
// implementations, Sec. V), and maps instruction addresses back to
// functions, C source lines and assembly lines (Sec. V-C).
//
//	go run ./examples/tracing
package main

import (
	"bytes"
	"context"
	_ "embed"
	"fmt"
	"log"

	kahrisma "repro"
	"repro/internal/trace"
)

//go:embed src/gcd.c
var program string

func main() {
	sys, err := kahrisma.New()
	if err != nil {
		log.Fatal(err)
	}
	exe, err := sys.BuildC("RISC", map[string]string{"gcd.c": program})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := exe.Run(context.Background(), kahrisma.WithModels("DOE"), kahrisma.WithTrace(&buf))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %s", res.Output)

	events, err := trace.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d events for %d executed operations\n\n", len(events), res.Operations)

	fmt.Println("first ten trace events (cycle addr slot op in/out imm):")
	lines := bytes.Split(buf.Bytes(), []byte("\n"))
	for _, l := range lines[:10] {
		fmt.Printf("  %s\n", l)
	}

	fmt.Println("\naddress-to-source mapping of those events:")
	seen := map[uint32]bool{}
	for _, e := range events[:40] {
		if seen[e.Addr] {
			continue
		}
		seen[e.Addr] = true
		fmt.Printf("  %s\n", exe.Location(e.Addr))
		if len(seen) == 8 {
			break
		}
	}
}
