// ISA selection: the paper's motivating use case (Sec. I/VIII) — measure
// the theoretical ILP of every function of an application in one
// simulation run and use it as the indicator for selecting an
// appropriate ISA per function, "without the need to simulate any
// combination of the different ISAs and applications".
//
//	go run ./examples/isaselect
package main

import (
	"context"
	_ "embed"
	"fmt"
	"log"

	kahrisma "repro"
)

//go:embed src/app.c
var app string

func main() {
	sys, err := kahrisma.New()
	if err != nil {
		log.Fatal(err)
	}
	exe, err := sys.BuildC("RISC", map[string]string{"app.c": app})
	if err != nil {
		log.Fatal(err)
	}
	res, err := exe.Run(context.Background(), kahrisma.WithPerFunctionILP())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-function theoretical ILP (one RISC simulation run):")
	fmt.Printf("  %-12s %8s %10s   %s\n", "function", "ILP", "ops", "recommended instance")
	for _, f := range res.FunctionILP {
		rec := sys.RecommendISA(f.ILP, 0.7)
		fmt.Printf("  %-12s %8.2f %10d   %s\n", f.Name, f.ILP, f.Operations, rec)
	}
	fmt.Println("\nThe reconfigurable fabric can instantiate the wide instance only")
	fmt.Println("while the filter runs and release the EDPEs afterwards; the")
	fmt.Println("mixed-ISA binary switches with SWITCHTARGET (see examples/mixedisa).")
}
