// A mixed application: a wide unrolled filter, a serial PRNG mixer and
// a branchy lookup. Each function prefers a different instance shape.
int coef[16];
int data[256];

int filter16(int* x) {
    int a0 = x[0]*coef[0];   int a1 = x[1]*coef[1];
    int a2 = x[2]*coef[2];   int a3 = x[3]*coef[3];
    int a4 = x[4]*coef[4];   int a5 = x[5]*coef[5];
    int a6 = x[6]*coef[6];   int a7 = x[7]*coef[7];
    int a8 = x[8]*coef[8];   int a9 = x[9]*coef[9];
    int a10 = x[10]*coef[10]; int a11 = x[11]*coef[11];
    int a12 = x[12]*coef[12]; int a13 = x[13]*coef[13];
    int a14 = x[14]*coef[14]; int a15 = x[15]*coef[15];
    return (((a0+a1)+(a2+a3)) + ((a4+a5)+(a6+a7)))
         + (((a8+a9)+(a10+a11)) + ((a12+a13)+(a14+a15)));
}

int mix(int n) {
    uint s = 1;
    for (int i = 0; i < n; i++) s = s * 1103515245 + 12345;
    return (int)(s >> 16);
}

int lookup(int v) {
    if (v < 32) return 1;
    if (v < 64) return 2;
    if (v < 96) return 3;
    if (v < 128) return 5;
    return 7;
}

int main() {
    for (int i = 0; i < 16; i++) coef[i] = i + 1;
    for (int i = 0; i < 256; i++) data[i] = (i * 37) & 255;
    int acc = 0;
    for (int r = 0; r < 16; r++) {
        for (int i = 0; i + 16 <= 256; i += 16) acc += filter16(&data[i]);
        acc += mix(64);
        acc += lookup(acc & 255);
    }
    return acc & 0xFF;
}
