// Multi-threaded fabric: the paper's Fig. 1 — several hardware threads
// with different instruction formats co-exist on one EDPE array. Three
// programs (a RISC control task, a 2-issue stream task and a 6-issue
// kernel) are spawned on a 16-element fabric and co-simulated; when a
// thread finishes, its elements return to the pool.
//
//	go run ./examples/multithread
package main

import (
	_ "embed"
	"fmt"
	"log"

	"repro/internal/cycle"
	"repro/internal/driver"
	"repro/internal/fabric"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/targetgen"
)

//go:embed src/control.c
var controlTask string

//go:embed src/stream.c
var streamTask string

//go:embed src/kernel.c
var kernelTask string

func main() {
	m, err := targetgen.Kahrisma()
	if err != nil {
		log.Fatal(err)
	}
	fab, err := fabric.New(fabric.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	cluster := fabric.NewCluster(m, fab)

	spawn := func(name, isaName, src string) *cycle.DOE {
		prog, err := driver.Load(m, isaName, driver.CSource(name+".c", src))
		if err != nil {
			log.Fatal(err)
		}
		opts := sim.DefaultOptions()
		opts.MaxInstructions = 1 << 20
		th, err := cluster.Spawn(name, prog, opts)
		if err != nil {
			log.Fatal(err)
		}
		doe := cycle.NewDOE(m, mem.Paper())
		th.CPU.Attach(doe)
		return doe
	}
	does := map[string]*cycle.DOE{
		"control(RISC)": spawn("control", "RISC", controlTask),
		"stream(VLIW2)": spawn("stream", "VLIW2", streamTask),
		"kernel(VLIW6)": spawn("kernel", "VLIW6", kernelTask),
	}
	fmt.Printf("fabric: %d/%d EDPEs busy, utilization %.0f%%\n",
		16-fab.FreeEDPEs(), 16, 100*fab.Utilization())

	if err := cluster.Run(32, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall hardware threads finished:")
	for _, th := range cluster.Threads() {
		fmt.Printf("  %-16s exit=%3d  %6d instructions\n",
			th.Name, th.Status.ExitCode, th.Status.Instructions)
	}
	for name, d := range does {
		fmt.Printf("  %-16s DOE %6d cycles (%.2f ops/cycle)\n", name, d.Cycles(), cycle.OPC(d))
	}
	fmt.Printf("\nfabric after completion: %d EDPEs free, %d tiles free\n",
		fab.FreeEDPEs(), fab.FreeTiles())
}
