// Multi-threaded fabric: the paper's Fig. 1 — several hardware threads
// with different instruction formats co-exist on one EDPE array. Three
// programs (a RISC control task, a 2-issue stream task and a 6-issue
// kernel) are spawned on a 16-element fabric and co-simulated; when a
// thread finishes, its elements return to the pool.
//
//	go run ./examples/multithread
package main

import (
	"fmt"
	"log"

	"repro/internal/cycle"
	"repro/internal/driver"
	"repro/internal/fabric"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/targetgen"
)

const controlTask = `
int main() {
    int events = 0;
    for (int t = 0; t < 64; t++) {
        if ((t * 2654435761) & 0x80000) events++;
    }
    return events;
}
`

const streamTask = `
int buf[64];
int main() {
    uint s = 5;
    int acc = 0;
    for (int i = 0; i < 64; i++) {
        s = s * 1103515245 + 12345;
        buf[i] = (int)(s >> 20);
    }
    for (int i = 0; i < 64; i++) acc += buf[i];
    return acc & 0xFF;
}
`

const kernelTask = `
int v[64];
int main() {
    for (int i = 0; i < 64; i++) v[i] = i;
    int s0 = 0; int s1 = 0; int s2 = 0; int s3 = 0;
    int s4 = 0; int s5 = 0;
    for (int r = 0; r < 8; r++) {
        for (int i = 0; i + 6 <= 64; i += 6) {
            s0 += v[i] * 3;
            s1 += v[i+1] * 5;
            s2 += v[i+2] * 7;
            s3 += v[i+3] * 11;
            s4 += v[i+4] * 13;
            s5 += v[i+5] * 17;
        }
    }
    return (s0 + s1 + s2 + s3 + s4 + s5) & 0xFF;
}
`

func main() {
	m, err := targetgen.Kahrisma()
	if err != nil {
		log.Fatal(err)
	}
	fab, err := fabric.New(fabric.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	cluster := fabric.NewCluster(m, fab)

	spawn := func(name, isaName, src string) *cycle.DOE {
		prog, err := driver.Load(m, isaName, driver.CSource(name+".c", src))
		if err != nil {
			log.Fatal(err)
		}
		opts := sim.DefaultOptions()
		opts.MaxInstructions = 1 << 20
		th, err := cluster.Spawn(name, prog, opts)
		if err != nil {
			log.Fatal(err)
		}
		doe := cycle.NewDOE(m, mem.Paper())
		th.CPU.Attach(doe)
		return doe
	}
	does := map[string]*cycle.DOE{
		"control(RISC)": spawn("control", "RISC", controlTask),
		"stream(VLIW2)": spawn("stream", "VLIW2", streamTask),
		"kernel(VLIW6)": spawn("kernel", "VLIW6", kernelTask),
	}
	fmt.Printf("fabric: %d/%d EDPEs busy, utilization %.0f%%\n",
		16-fab.FreeEDPEs(), 16, 100*fab.Utilization())

	if err := cluster.Run(32, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall hardware threads finished:")
	for _, th := range cluster.Threads() {
		fmt.Printf("  %-16s exit=%3d  %6d instructions\n",
			th.Name, th.Status.ExitCode, th.Status.Instructions)
	}
	for name, d := range does {
		fmt.Printf("  %-16s DOE %6d cycles (%.2f ops/cycle)\n", name, d.Cycles(), cycle.OPC(d))
	}
	fmt.Printf("\nfabric after completion: %d EDPEs free, %d tiles free\n",
		fab.FreeEDPEs(), fab.FreeTiles())
}
