int buf[64];
int main() {
    uint s = 5;
    int acc = 0;
    for (int i = 0; i < 64; i++) {
        s = s * 1103515245 + 12345;
        buf[i] = (int)(s >> 20);
    }
    for (int i = 0; i < 64; i++) acc += buf[i];
    return acc & 0xFF;
}
