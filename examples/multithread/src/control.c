int main() {
    int events = 0;
    for (int t = 0; t < 64; t++) {
        if ((t * 2654435761) & 0x80000) events++;
    }
    return events;
}
