int v[64];
int main() {
    for (int i = 0; i < 64; i++) v[i] = i;
    int s0 = 0; int s1 = 0; int s2 = 0; int s3 = 0;
    int s4 = 0; int s5 = 0;
    for (int r = 0; r < 8; r++) {
        for (int i = 0; i + 6 <= 64; i += 6) {
            s0 += v[i] * 3;
            s1 += v[i+1] * 5;
            s2 += v[i+2] * 7;
            s3 += v[i+3] * 11;
            s4 += v[i+4] * 13;
            s5 += v[i+5] * 17;
        }
    }
    return (s0 + s1 + s2 + s3 + s4 + s5) & 0xFF;
}
