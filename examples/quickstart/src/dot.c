// Dot product over two vectors, a mildly parallel kernel.
int a[64];
int b[64];

int dot(int* x, int* y, int n) {
    int s0 = 0; int s1 = 0; int s2 = 0; int s3 = 0;
    for (int i = 0; i < n; i += 4) {
        s0 += x[i]   * y[i];
        s1 += x[i+1] * y[i+1];
        s2 += x[i+2] * y[i+2];
        s3 += x[i+3] * y[i+3];
    }
    return ((s0 + s1) + (s2 + s3));
}

int main() {
    for (int i = 0; i < 64; i++) { a[i] = i; b[i] = 64 - i; }
    int r = dot(a, b, 64);
    printf("dot = %d\n", r);
    return 0;
}
