// Quickstart: compile a MiniC program for two processor instances,
// simulate it with all three cycle-approximation models, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	kahrisma "repro"
)

const program = `
// Dot product over two vectors, a mildly parallel kernel.
int a[64];
int b[64];

int dot(int* x, int* y, int n) {
    int s0 = 0; int s1 = 0; int s2 = 0; int s3 = 0;
    for (int i = 0; i < n; i += 4) {
        s0 += x[i]   * y[i];
        s1 += x[i+1] * y[i+1];
        s2 += x[i+2] * y[i+2];
        s3 += x[i+3] * y[i+3];
    }
    return ((s0 + s1) + (s2 + s3));
}

int main() {
    for (int i = 0; i < 64; i++) { a[i] = i; b[i] = 64 - i; }
    int r = dot(a, b, 64);
    printf("dot = %d\n", r);
    return 0;
}
`

func main() {
	sys, err := kahrisma.New()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("available processor instances:", sys.ISAs())
	fmt.Printf("%-8s %12s %12s %12s %12s %10s\n",
		"ISA", "instrs", "ILP cyc", "AIE cyc", "DOE cyc", "DOE opc")
	for _, isaName := range []string{"RISC", "VLIW2", "VLIW4", "VLIW8"} {
		exe, err := sys.BuildC(isaName, map[string]string{"dot.c": program})
		if err != nil {
			log.Fatal(err)
		}
		res, err := exe.Run(context.Background(), kahrisma.WithModels("ILP", "AIE", "DOE"))
		if err != nil {
			log.Fatal(err)
		}
		if res.Output != "dot = 43680\n" || res.ExitCode != 0 {
			log.Fatalf("%s: wrong result %q (exit %d)", isaName, res.Output, res.ExitCode)
		}
		fmt.Printf("%-8s %12d %12d %12d %12d %10.2f\n",
			isaName, res.Instructions,
			res.Cycles["ILP"], res.Cycles["AIE"], res.Cycles["DOE"], res.OPC["DOE"])
	}
	fmt.Println("\nprogram output:", "dot = 43680")
}
