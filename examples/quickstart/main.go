// Quickstart: compile a MiniC program for two processor instances,
// simulate it with all three cycle-approximation models, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	_ "embed"
	"fmt"
	"log"

	kahrisma "repro"
)

//go:embed src/dot.c
var program string

func main() {
	sys, err := kahrisma.New()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("available processor instances:", sys.ISAs())
	fmt.Printf("%-8s %12s %12s %12s %12s %10s\n",
		"ISA", "instrs", "ILP cyc", "AIE cyc", "DOE cyc", "DOE opc")
	for _, isaName := range []string{"RISC", "VLIW2", "VLIW4", "VLIW8"} {
		exe, err := sys.BuildC(isaName, map[string]string{"dot.c": program})
		if err != nil {
			log.Fatal(err)
		}
		res, err := exe.Run(context.Background(), kahrisma.WithModels("ILP", "AIE", "DOE"))
		if err != nil {
			log.Fatal(err)
		}
		if res.Output != "dot = 43680\n" || res.ExitCode != 0 {
			log.Fatalf("%s: wrong result %q (exit %d)", isaName, res.Output, res.ExitCode)
		}
		fmt.Printf("%-8s %12d %12d %12d %12d %10.2f\n",
			isaName, res.Instructions,
			res.Cycles["ILP"], res.Cycles["AIE"], res.Cycles["DOE"], res.OPC["DOE"])
	}
	fmt.Println("\nprogram output:", "dot = 43680")
}
