package kahrisma_test

import (
	"context"
	"errors"
	"testing"
	"time"

	kahrisma "repro"
)

// A pooled sweep over every processor instance must reproduce the
// serial results exactly: same exit codes, same output, same per-model
// cycle counts.
func TestPoolMatchesSerialRuns(t *testing.T) {
	sys := newSys(t)
	isaNames := sys.ISAs()

	exes := make([]*kahrisma.Executable, len(isaNames))
	serial := make([]*kahrisma.RunResult, len(isaNames))
	for i, isaName := range isaNames {
		exe, err := sys.BuildC(isaName, map[string]string{"p.c": facadeProg})
		if err != nil {
			t.Fatal(err)
		}
		exes[i] = exe
		res, err := exe.Run(context.Background(), kahrisma.WithModels("ILP", "DOE"))
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}

	pool := kahrisma.NewPool(4)
	defer pool.Close()

	// Submit every executable several times to exercise shared-program
	// concurrency (and state recycling) within the pool.
	const rounds = 3
	var batches []*kahrisma.Batch
	for r := 0; r < rounds; r++ {
		items := make([]kahrisma.BatchItem, len(exes))
		for i, exe := range exes {
			items[i] = kahrisma.BatchItem{Exe: exe, Opts: []kahrisma.Option{kahrisma.WithModels("ILP", "DOE")}}
		}
		batches = append(batches, pool.SubmitBatch(context.Background(), items))
	}
	pool.Wait()

	jobCount := 0
	for _, b := range batches {
		if err := b.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		jobCount += b.Len()
		for i, res := range b.Results() {
			want := serial[i]
			if res.ExitCode != want.ExitCode || res.Output != want.Output {
				t.Errorf("%s: pooled exit/output %d/%q, serial %d/%q",
					isaNames[i], res.ExitCode, res.Output, want.ExitCode, want.Output)
			}
			for _, m := range []string{"ILP", "DOE"} {
				if res.Cycles[m] != want.Cycles[m] {
					t.Errorf("%s: pooled %s cycles %d != serial %d — not bit-identical",
						isaNames[i], m, res.Cycles[m], want.Cycles[m])
				}
			}
		}
		bst := b.Stats()
		if bst.Jobs != b.Len() || bst.Failed != 0 {
			t.Errorf("batch stats = %+v, want %d jobs / 0 failed", bst, b.Len())
		}
		if bst.Instructions == 0 || bst.Cycles["DOE"] == 0 {
			t.Errorf("batch counters empty: %+v", bst)
		}
	}

	st := pool.Stats()
	if st.JobsDone != int64(jobCount) || st.JobsFailed != 0 {
		t.Errorf("stats = %+v, want %d done / 0 failed", st, jobCount)
	}
	if st.QueueDepth != 0 || st.InFlight != 0 {
		t.Errorf("backpressure snapshot after drain: depth %d / in-flight %d, want 0/0", st.QueueDepth, st.InFlight)
	}
	if st.QueueCap <= 0 {
		t.Errorf("QueueCap = %d, want > 0", st.QueueCap)
	}
	if st.Instructions == 0 || st.Wall == 0 {
		t.Errorf("throughput counters empty: %+v", st)
	}
	// The test program is tiny, so most lookups are cold misses; only
	// presence is asserted here (the simpool stress test checks the
	// aggregate rate on a real workload).
	if st.DecodeCacheHitRate <= 0 {
		t.Errorf("decode-cache hit rate %.3f, want > 0", st.DecodeCacheHitRate)
	}
	if st.WallPerModel["DOE"] == 0 {
		t.Errorf("per-model wall time missing: %+v", st.WallPerModel)
	}
}

// Pool jobs respect per-job timeouts and submit-time validation, and
// classify both under the typed sentinels.
func TestPoolJobErrors(t *testing.T) {
	sys := newSys(t)
	spin, err := sys.BuildC("RISC", map[string]string{"spin.c": spinSource})
	if err != nil {
		t.Fatal(err)
	}
	pool := kahrisma.NewPool(2)
	defer pool.Close()

	bad := pool.Submit(context.Background(), spin, kahrisma.WithModels("WARP"))
	if _, err := bad.Wait(); !errors.Is(err, kahrisma.ErrBadModel) {
		t.Errorf("bad-model job error %v does not wrap ErrBadModel", err)
	}

	slow := pool.Submit(context.Background(), spin, kahrisma.WithTimeout(30*time.Millisecond))
	if _, err := slow.Wait(); !errors.Is(err, kahrisma.ErrCanceled) {
		t.Errorf("timed-out job error %v does not wrap ErrCanceled", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	running := pool.Submit(ctx, spin)
	time.Sleep(10 * time.Millisecond)
	cancel()
	if _, err := running.Wait(); !errors.Is(err, kahrisma.ErrCanceled) {
		t.Errorf("canceled job error %v does not wrap ErrCanceled", err)
	}
}
