package kahrisma_test

import (
	"context"
	"errors"
	"testing"
	"time"

	kahrisma "repro"
)

// spinSource loops forever; only fuel or cancellation can stop it.
const spinSource = `
int main() {
    int x = 0;
    while (1) { x = x + 1; }
    return x;
}
`

// Every facade failure mode must classify under its typed sentinel so
// callers use errors.Is instead of string matching.
func TestErrorChains(t *testing.T) {
	sys := newSys(t)

	t.Run("BadISA", func(t *testing.T) {
		if _, err := sys.IssueWidth("NOPE"); !errors.Is(err, kahrisma.ErrBadISA) {
			t.Errorf("IssueWidth error %v does not wrap ErrBadISA", err)
		}
		if _, err := sys.BuildC("NOPE", map[string]string{"p.c": facadeProg}); !errors.Is(err, kahrisma.ErrBadISA) {
			t.Errorf("BuildC error %v does not wrap ErrBadISA", err)
		}
	})

	exe, err := sys.BuildC("RISC", map[string]string{"spin.c": spinSource})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("BadModel", func(t *testing.T) {
		_, err := exe.Run(context.Background(), kahrisma.WithModels("WARP"))
		if !errors.Is(err, kahrisma.ErrBadModel) {
			t.Errorf("error %v does not wrap ErrBadModel", err)
		}
	})

	t.Run("FuelExhausted", func(t *testing.T) {
		_, err := exe.Run(context.Background(), kahrisma.WithFuel(50_000))
		if !errors.Is(err, kahrisma.ErrFuelExhausted) {
			t.Errorf("error %v does not wrap ErrFuelExhausted", err)
		}
		if errors.Is(err, kahrisma.ErrCanceled) {
			t.Errorf("fuel exhaustion misclassified as cancellation: %v", err)
		}
	})

	t.Run("Canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(10 * time.Millisecond)
			cancel()
		}()
		_, err := exe.Run(ctx)
		if !errors.Is(err, kahrisma.ErrCanceled) {
			t.Errorf("error %v does not wrap ErrCanceled", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error %v does not wrap context.Canceled", err)
		}
	})

	t.Run("Timeout", func(t *testing.T) {
		_, err := exe.Run(context.Background(), kahrisma.WithTimeout(20*time.Millisecond))
		if !errors.Is(err, kahrisma.ErrCanceled) {
			t.Errorf("error %v does not wrap ErrCanceled", err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("error %v does not wrap context.DeadlineExceeded", err)
		}
	})

	t.Run("PoolClosed", func(t *testing.T) {
		pool := kahrisma.NewPool(1)
		pool.Close()
		if _, err := pool.Submit(context.Background(), exe, kahrisma.WithFuel(1000)).Wait(); !errors.Is(err, kahrisma.ErrPoolClosed) {
			t.Errorf("Submit after Close: error %v does not wrap ErrPoolClosed", err)
		}
		batch := pool.SubmitBatch(context.Background(), []kahrisma.BatchItem{
			{Exe: exe, Opts: []kahrisma.Option{kahrisma.WithFuel(1000)}},
			{Exe: exe},
		})
		<-batch.Done() // must already be closed, not hang
		if err := batch.Err(); !errors.Is(err, kahrisma.ErrPoolClosed) {
			t.Errorf("batch after Close: Err() %v does not wrap ErrPoolClosed", err)
		}
		for i, j := range batch.Jobs() {
			<-j.Done()
			if _, err := j.Wait(); !errors.Is(err, kahrisma.ErrPoolClosed) {
				t.Errorf("batch job %d after Close: error %v does not wrap ErrPoolClosed", i, err)
			}
		}
	})
}
