package kahrisma_test

import (
	"context"
	"errors"
	"testing"
	"time"

	kahrisma "repro"
	"repro/internal/prof"
)

// runBatchAt runs n profiled DOE jobs of exe through a pool of the
// given width and returns the batch after completion.
func runBatchAt(t *testing.T, exe *kahrisma.Executable, workers, n int) *kahrisma.Batch {
	t.Helper()
	pool := kahrisma.NewPool(workers)
	t.Cleanup(pool.Close)
	items := make([]kahrisma.BatchItem, n)
	for i := range items {
		items[i] = kahrisma.BatchItem{
			Exe:  exe,
			Opts: []kahrisma.Option{kahrisma.WithModels("DOE"), kahrisma.WithProfiling()},
		}
	}
	b := pool.SubmitBatch(context.Background(), items)
	if err := b.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	return b
}

// The central determinism guarantee of the redesigned batch engine:
// a recycled-state batch at workers=1 and workers=8 is bit-identical in
// cycles, output and merged microarchitectural profile — recycling and
// sharded dispatch must be invisible to results.
func TestBatchWorkersBitIdentical(t *testing.T) {
	sys := newSys(t)
	exe, err := sys.BuildC("VLIW4", map[string]string{"p.c": facadeProg})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := exe.Run(context.Background(), kahrisma.WithModels("DOE"), kahrisma.WithProfiling())
	if err != nil {
		t.Fatal(err)
	}

	const n = 12
	b1 := runBatchAt(t, exe, 1, n)
	b8 := runBatchAt(t, exe, 8, n)

	r1, r8 := b1.Results(), b8.Results()
	for i := 0; i < n; i++ {
		for _, res := range []*kahrisma.RunResult{r1[i], r8[i]} {
			if res.Cycles["DOE"] != serial.Cycles["DOE"] {
				t.Errorf("job %d: pooled DOE cycles %d != serial %d — not bit-identical",
					i, res.Cycles["DOE"], serial.Cycles["DOE"])
			}
			if res.Output != serial.Output || res.ExitCode != serial.ExitCode {
				t.Errorf("job %d: pooled output/exit %q/%d != serial %q/%d",
					i, res.Output, res.ExitCode, serial.Output, serial.ExitCode)
			}
		}
	}

	// Merged profiles must match each other exactly, regardless of
	// worker count, scheduling, or recycling.
	p1, p8 := b1.MergeProfiles(), b8.MergeProfiles()
	if err := prof.Equal(p1, p8); err != nil {
		t.Errorf("merged profiles differ between workers=1 and workers=8: %v", err)
	}
	// And each must equal the serial profile folded n times.
	serialN := make([]*kahrisma.Profile, n)
	for i := range serialN {
		serialN[i] = serial.Profile
	}
	if err := prof.Equal(p8, kahrisma.MergeProfiles(serialN...)); err != nil {
		t.Errorf("workers=8 merged profile differs from n-fold serial profile: %v", err)
	}

	st := b8.Stats()
	if st.Jobs != n || st.Failed != 0 {
		t.Errorf("batch stats = %+v, want %d jobs / 0 failed", st, n)
	}
	if want := n * serial.Instructions; st.Instructions != uint64(want) {
		t.Errorf("batch instructions = %d, want %d", st.Instructions, want)
	}
	if st.Cycles["DOE"] != uint64(n)*serial.Cycles["DOE"] {
		t.Errorf("batch DOE cycles = %d, want %d", st.Cycles["DOE"], uint64(n)*serial.Cycles["DOE"])
	}
}

// Submit-time configuration errors occupy their batch slot: Err
// surfaces the first one in submission order, Results holds nil there,
// and the healthy items still run.
func TestBatchSubmitTimeErrors(t *testing.T) {
	sys := newSys(t)
	exe, err := sys.BuildC("RISC", map[string]string{"p.c": facadeProg})
	if err != nil {
		t.Fatal(err)
	}
	pool := kahrisma.NewPool(2)
	defer pool.Close()

	b := pool.SubmitBatch(context.Background(), []kahrisma.BatchItem{
		{Exe: exe},
		{Exe: exe, Opts: []kahrisma.Option{kahrisma.WithModels("WARP")}}, // unknown model
		{Exe: exe},
	})
	if err := b.Wait(context.Background()); !errors.Is(err, kahrisma.ErrBadModel) {
		t.Errorf("batch Err %v does not wrap ErrBadModel", err)
	}
	res := b.Results()
	if res[0] == nil || res[2] == nil {
		t.Error("healthy batch items did not run")
	}
	if res[1] != nil {
		t.Error("failed batch item produced a result")
	}
	if st := b.Stats(); st.Failed != 1 {
		t.Errorf("batch stats = %+v, want 1 failed", st)
	}
}

// Cancelling the submission context mid-batch aborts the remaining
// jobs with ErrCanceled; Wait under a live context reports the batch's
// first error.
func TestBatchMidFlightCancellationFacade(t *testing.T) {
	sys := newSys(t)
	spin, err := sys.BuildC("RISC", map[string]string{"spin.c": spinSource})
	if err != nil {
		t.Fatal(err)
	}
	pool := kahrisma.NewPool(1)
	defer pool.Close()

	ctx, cancel := context.WithCancel(context.Background())
	items := make([]kahrisma.BatchItem, 3)
	for i := range items {
		items[i] = kahrisma.BatchItem{Exe: spin}
	}
	b := pool.SubmitBatch(ctx, items)
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := b.Wait(context.Background()); !errors.Is(err, kahrisma.ErrCanceled) {
		t.Errorf("mid-batch cancellation: Err %v does not wrap ErrCanceled", err)
	}
	for i, j := range b.Jobs() {
		if _, err := j.Wait(); !errors.Is(err, kahrisma.ErrCanceled) {
			t.Errorf("job %d after cancellation: error %v does not wrap ErrCanceled", i, err)
		}
	}
	// Waiting with an already-expired context returns promptly with the
	// waiting context's error when the batch is still unfinished — here
	// the batch is done, so the completion branch wins.
	expired, cancelExpired := context.WithCancel(context.Background())
	cancelExpired()
	if err := b.Wait(expired); !errors.Is(err, kahrisma.ErrCanceled) {
		t.Errorf("Wait on finished batch with expired context: %v does not wrap ErrCanceled", err)
	}
}
