package kahrisma

import (
	"io"
	"time"
)

// Option configures a simulation run. Options compose left to right:
//
//	res, err := exe.Run(ctx,
//	    kahrisma.WithModels("ILP", "DOE"),
//	    kahrisma.WithMemorySpec("limit:1|cache:2K,4,32,3|mem:18"),
//	    kahrisma.WithFuel(50_000_000))
//
// The zero configuration (no options) runs the functional simulator
// with decode cache and instruction prediction, the paper's memory
// hierarchy for any model that needs one, and a large fuel default.
type Option func(*runConfig)

// runConfig is the resolved option set — an internal carrier so the
// public surface stays extensible.
type runConfig struct {
	Models             []string
	Memory             MemoryConfig
	Stdout             io.Writer
	Stdin              io.Reader
	Trace              io.Writer
	Fuel               uint64
	Timeout            time.Duration
	DisableDecodeCache bool
	DisablePrediction  bool
	DisableSuperblocks bool
	DecodeCacheCap     int
	PerFunctionILP     bool
	Profile            bool
	ProfileStride      uint64
	EventSink          EventSink
	StreamOps          bool
	ProgressInterval   uint64
}

func resolveOptions(opts []Option) runConfig {
	var cfg runConfig
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}

// WithModels activates cycle models by name: "ILP", "AIE", "DOE" and
// the cycle-accurate reference "RTL". Repeated use appends.
func WithModels(names ...string) Option {
	return func(c *runConfig) { c.Models = append(c.Models, names...) }
}

// WithMemory selects the memory-delay hierarchy used by AIE/DOE/RTL.
func WithMemory(mc MemoryConfig) Option {
	return func(c *runConfig) { c.Memory = mc }
}

// WithMemorySpec builds a custom hierarchy from its textual
// description, e.g. "limit:1|cache:2K,4,32,3|mem:18" (see docs).
func WithMemorySpec(spec string) Option {
	return func(c *runConfig) { c.Memory = MemoryConfig{Spec: spec} }
}

// WithFlatMemory replaces the paper's L1/L2/DRAM hierarchy with a
// fixed-delay memory of the given cycle cost.
func WithFlatMemory(delay uint64) Option {
	return func(c *runConfig) { c.Memory = MemoryConfig{Flat: true, FlatDelay: delay} }
}

// WithFuel bounds the run to n executed instructions; exceeding the
// budget returns an error wrapping ErrFuelExhausted. Zero keeps the
// large default (2e9).
func WithFuel(n uint64) Option {
	return func(c *runConfig) { c.Fuel = n }
}

// WithTimeout bounds the run's wall-clock time on top of the caller's
// context; expiry returns an error wrapping ErrCanceled and
// context.DeadlineExceeded.
func WithTimeout(d time.Duration) Option {
	return func(c *runConfig) { c.Timeout = d }
}

// WithTrace streams a trace file to w (Sec. V: cycle, opcode, register
// numbers and values, immediates per executed operation).
func WithTrace(w io.Writer) Option {
	return func(c *runConfig) { c.Trace = w }
}

// WithStdout sends the program's output to w instead of capturing it
// in RunResult.Output.
func WithStdout(w io.Writer) Option {
	return func(c *runConfig) { c.Stdout = w }
}

// WithStdin feeds the program's emulated standard input from r.
func WithStdin(r io.Reader) Option {
	return func(c *runConfig) { c.Stdin = r }
}

// WithoutDecodeCache disables the detection/decode cache (and with it
// instruction prediction) — the paper's slow baseline, for
// measurements.
func WithoutDecodeCache() Option {
	return func(c *runConfig) { c.DisableDecodeCache = true }
}

// WithoutPrediction disables instruction prediction while keeping the
// decode cache.
func WithoutPrediction() Option {
	return func(c *runConfig) { c.DisablePrediction = true }
}

// WithoutSuperblocks disables superblock decode traces, keeping the
// stepwise decode-cache + prediction interpreter — for debugging and
// for bit-identity comparisons against the trace executor
// (docs/interp.md).
func WithoutSuperblocks() Option {
	return func(c *runConfig) { c.DisableSuperblocks = true }
}

// WithDecodeCacheCap bounds the decode cache to n entries; a miss on a
// full cache flushes it wholesale (the deterministic eviction policy),
// counted in the profiler's eviction counter. 0 keeps the paper's
// unbounded cache.
func WithDecodeCacheCap(n int) Option {
	return func(c *runConfig) { c.DecodeCacheCap = n }
}

// WithProfiling attaches the microarchitectural profiler
// (internal/prof) to the run and fills RunResult.Profile: per-PC
// execution/cycle/stall histograms, decode-cache and
// instruction-prediction counters, per-ISA and per-VLIW-slot cycle
// attribution, and run-time ISA-switch transitions. Cycle attribution
// uses the run's first cycle model (WithModels order); functional runs
// profile execution counts only. Profiling is passive — cycle counts
// and results are bit-identical with and without it (docs/profiling.md).
func WithProfiling() Option {
	return func(c *runConfig) { c.Profile = true }
}

// WithProfileSampling enables profiling with deterministic stride
// sampling of the per-PC table: every stride-th instruction is
// sampled, bounding collector memory on very long jobs while totals,
// per-ISA/slot tables and cache counters stay exact. The profile
// records the stride (Profile.SampleStride) and reports scale sample
// counts back to estimates. stride <= 1 selects exact attribution
// (same as WithProfiling). Sampling is passive like profiling itself:
// simulation results are bit-identical at any stride.
func WithProfileSampling(stride uint64) Option {
	return func(c *runConfig) {
		c.Profile = true
		if stride > 1 {
			c.ProfileStride = stride
		} else {
			c.ProfileStride = 0
		}
	}
}

// WithPerFunctionILP additionally profiles the theoretical ILP of every
// function (the paper's per-function ISA selection indicator), filling
// RunResult.FunctionILP.
func WithPerFunctionILP() Option {
	return func(c *runConfig) { c.PerFunctionILP = true }
}

// WithEventSink streams the run's live events to sink while the
// simulation is still executing: run-time ISA switches, periodic
// progress snapshots (instructions, operations, cycles, fuel
// remaining, active ISA) and a terminal done event on every exit path.
// NewStreamer builds the canonical bounded-ring sink; custom sinks
// must not block, or they stall the interpretation loop. Combine with
// WithTraceStreaming for per-operation trace events
// (docs/streaming.md).
func WithEventSink(sink EventSink) Option {
	return func(c *runConfig) { c.EventSink = sink }
}

// WithTraceStreaming additionally feeds every executed operation to
// the event sink as a live trace event — the streaming form of
// WithTrace, and the expensive half of streaming (one event per
// operation instead of a handful per run). It has no effect without
// WithEventSink.
func WithTraceStreaming() Option {
	return func(c *runConfig) { c.StreamOps = true }
}

// WithProgressInterval sets the instruction distance between streamed
// progress events (0 keeps the default, sim.DefaultProgressInterval).
func WithProgressInterval(instructions uint64) Option {
	return func(c *runConfig) { c.ProgressInterval = instructions }
}
